// Scheduling policy components: the multifactor priority plugin stand-in
// (Niagara's configuration, §2.1, balances job age, size, partition, QOS and
// fair share) and the EASY backfill planner.
//
// These are pure policy objects: the ClusterSim feeds them queue/cluster
// state and executes their decisions, which keeps the policies unit-testable
// without a simulation.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/sim_clock.hpp"
#include "slurm/job.hpp"

namespace eco::slurm {

// Decayed per-user usage tracking for the fair-share factor.
//
// ClusterSim keeps one tracker per partition shard: usage accrues in the
// partition a job ran in, so a user burning hours in one partition keeps
// full fair-share standing in another (Slurm's
// PriorityFlags=NO_FAIR_TREE-style per-partition accounting). Both engines
// charge the same shard tracker, which is what keeps legacy-vs-sharded
// schedules byte-identical.
//
// The cluster-wide decayed total is maintained incrementally: every user's
// contribution decays at the same exponential rate, so the total itself
// decays like a single usage entry and one (amount, as_of) pair tracks it.
// Factor() is therefore O(log users) — one map lookup — instead of a scan
// over every user per query, which made priority recomputation quadratic in
// deep queues.
//
// User entries live in user-hash buckets: each lookup/update pays
// O(log(users / buckets)) inside one bucket's map, so a million-user roster
// behaves like a sixteen-thousand-user one. The decayed total stays a single
// cluster-wide (amount, as_of) pair — splitting it per bucket would reorder
// the floating-point sums and break the bitwise legacy-vs-sharded schedule
// equivalence the test suite pins down.
class FairShareTracker {
 public:
  // Slurm's PriorityDecayHalfLife default. ClusterConfig::
  // fairshare_half_life_s (and the per-partition override) plumb this
  // through at runtime.
  static constexpr double kDefaultHalfLifeSeconds = 7 * 24 * 3600.0;
  static constexpr std::size_t kDefaultBuckets = 64;

  explicit FairShareTracker(double half_life_seconds = kDefaultHalfLifeSeconds,
                            std::size_t buckets = kDefaultBuckets);

  void AddUsage(std::uint32_t user, double cpu_seconds, SimTime now);
  // Factor in (0, 1]; 1 = no recent usage, decreasing with decayed usage
  // relative to the cluster-wide average.
  [[nodiscard]] double Factor(std::uint32_t user, SimTime now) const;
  [[nodiscard]] std::size_t user_count() const { return user_count_; }
  [[nodiscard]] double half_life_seconds() const { return half_life_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  struct Usage {
    double amount = 0.0;
    SimTime as_of = 0.0;
  };
  struct Bucket {
    std::map<std::uint32_t, Usage> usage;
  };

  [[nodiscard]] double DecayedUsage(std::uint32_t user, SimTime now) const;
  [[nodiscard]] std::size_t BucketOf(std::uint32_t user) const;

  double half_life_;
  std::vector<Bucket> buckets_;  // size is a power of two
  std::size_t user_count_ = 0;
  // Incrementally maintained Σ_u DecayedUsage(u): decayed to `total_.as_of`.
  Usage total_{};
};

struct MultifactorWeights {
  double age = 1000.0;
  double size = 500.0;
  double fairshare = 2000.0;
  double qos = 0.0;
  // Age factor saturates after this long in the queue.
  double max_age_seconds = 7 * 24 * 3600.0;
};

class MultifactorPriority {
 public:
  MultifactorPriority(MultifactorWeights weights, int cluster_cores)
      : weights_(weights), cluster_cores_(cluster_cores) {}

  [[nodiscard]] double Compute(const JobRecord& job, SimTime now,
                               const FairShareTracker& fairshare) const;

  // The factored form Compute() is built from. The indexed scheduler caches
  // the time-invariant size factor per job and the fair-share factor per
  // user, then calls this per candidate — the expression is shared so both
  // paths produce bitwise-identical priorities.
  [[nodiscard]] double ComputeFromFactors(double wait_seconds,
                                          double size_factor,
                                          double fs_factor) const;
  [[nodiscard]] double SizeFactor(int num_tasks, int min_nodes) const;

  [[nodiscard]] const MultifactorWeights& weights() const { return weights_; }

 private:
  MultifactorWeights weights_;
  int cluster_cores_;
};

enum class SchedulerPolicy { kFifo, kBackfill };

// One pending job as seen by the planner.
struct PlanInput {
  JobId id = 0;
  int nodes_needed = 1;
  double time_limit_s = 0.0;
  double priority = 0.0;
  std::uint64_t tiebreak = 0;  // submission order
};

// A running job's resource horizon.
struct RunningInput {
  int nodes_held = 1;
  SimTime expected_end = 0.0;  // start + time_limit
};

// Decides which pending jobs to start *now*. FIFO: highest-priority first,
// stop at the first job that does not fit. Backfill (EASY): the blocked head
// gets a shadow reservation; lower-priority jobs may start only if they fit
// in the spare nodes and finish (by time limit) before the shadow time.
std::vector<JobId> PlanSchedule(SchedulerPolicy policy,
                                std::vector<PlanInput> pending,
                                const std::vector<RunningInput>& running,
                                int free_nodes, int total_nodes, SimTime now);

}  // namespace eco::slurm
