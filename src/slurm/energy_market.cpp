#include "slurm/energy_market.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace eco::slurm {
namespace {

constexpr double kDay = 24.0 * 3600.0;

// Deterministic per-day jitter factor in [0.9, 1.1].
double DayJitter(std::uint64_t seed, SimTime t) {
  const auto day = static_cast<std::uint64_t>(t / kDay);
  Rng rng(seed ^ (day * 0x9e3779b97f4a7c15ull + 1));
  return 0.9 + 0.2 * rng.NextDouble();
}

}  // namespace

double EnergyMarket::PriceAt(SimTime t) const {
  const double hour = std::fmod(t, kDay) / 3600.0;
  // Evening peak around 19:00, morning shoulder around 08:00.
  const double evening = std::exp(-0.5 * std::pow((hour - 19.0) / 2.0, 2));
  const double morning = 0.6 * std::exp(-0.5 * std::pow((hour - 8.0) / 1.5, 2));
  // Midday solar discount around 13:00.
  const double solar = std::exp(-0.5 * std::pow((hour - 13.0) / 2.5, 2));
  double price = params_.base_price +
                 params_.peak_amplitude * (evening + morning) -
                 params_.solar_dip * solar;
  // Overnight wind discount.
  if (hour < 5.0 || hour > 23.0) price -= 20.0;
  return std::max(5.0, price * DayJitter(params_.seed, t));
}

double EnergyMarket::RenewableShareAt(SimTime t) const {
  const double hour = std::fmod(t, kDay) / 3600.0;
  const double solar = std::exp(-0.5 * std::pow((hour - 13.0) / 2.5, 2));
  const double wind = 0.35 + 0.15 * std::sin(2.0 * M_PI * (hour + 2.0) / 24.0);
  return std::clamp((wind + 0.45 * solar) * DayJitter(params_.seed ^ 0xabc, t),
                    0.0, 1.0);
}

double EnergyMarket::CarbonAt(SimTime t) const {
  return std::max(20.0, params_.base_carbon +
                            params_.carbon_swing * (0.5 - RenewableShareAt(t)));
}

double EnergyMarket::EnergyCost(SimTime t, double duration_s,
                                double avg_watts) const {
  double cost = 0.0;
  double remaining = duration_s;
  SimTime cursor = t;
  while (remaining > 0.0) {
    const double step = std::min(remaining, 3600.0);
    const double mwh = avg_watts * step / 3.6e9;  // W·s -> MWh
    cost += mwh * PriceAt(cursor);
    cursor += step;
    remaining -= step;
  }
  return cost;
}

double EnergyMarket::CarbonCost(SimTime t, double duration_s,
                                double avg_watts) const {
  double grams = 0.0;
  double remaining = duration_s;
  SimTime cursor = t;
  while (remaining > 0.0) {
    const double step = std::min(remaining, 3600.0);
    const double kwh = avg_watts * step / 3.6e6;
    grams += kwh * CarbonAt(cursor);
    cursor += step;
    remaining -= step;
  }
  return grams;
}

bool GreenWindowPolicy::IsGreen(SimTime t) const {
  return market_->PriceAt(t) <= params_.max_price &&
         market_->CarbonAt(t) <= params_.max_carbon;
}

SimTime GreenWindowPolicy::NextGreenTime(SimTime t) const {
  const SimTime limit = t + params_.max_hold_s;
  for (SimTime cursor = t; cursor <= limit; cursor += params_.scan_step_s) {
    if (IsGreen(cursor)) return cursor;
  }
  return limit;
}

}  // namespace eco::slurm
