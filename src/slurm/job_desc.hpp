// Bridge between the C++ JobRequest and the C job_desc_msg_t the plugin ABI
// uses. The descriptor's string fields point into the wrapper's fixed-size
// buffers so plugins can edit them in place without ownership questions.
#pragma once

#include "common/units.hpp"
#include "slurm/job.hpp"
#include "slurm/plugin_api.h"

namespace eco::slurm {

class JobDescWrapper {
 public:
  JobDescWrapper(const JobRequest& request, JobId id);

  [[nodiscard]] job_desc_msg_t* desc() { return &desc_; }
  [[nodiscard]] const job_desc_msg_t* desc() const { return &desc_; }

  // Folds any plugin edits back into a JobRequest (unset sentinel fields
  // keep `base`'s values). Sanitises out-of-range numeric edits.
  [[nodiscard]] JobRequest ToRequest(const JobRequest& base) const;

 private:
  job_desc_msg_t desc_{};
  char name_[JOB_DESC_NAME_LEN]{};
  char comment_[JOB_DESC_COMMENT_LEN]{};
  char partition_[JOB_DESC_PARTITION_LEN]{};
  char script_[JOB_DESC_SCRIPT_LEN]{};
};

}  // namespace eco::slurm
