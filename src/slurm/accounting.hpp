// Accounting database — the slurmdbd stand-in. Finished jobs land here with
// their energy/temperature statistics; benches and the Chronus benchmark
// service query it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "slurm/job.hpp"

namespace eco::slurm {

struct AccountingTotals {
  std::size_t jobs = 0;
  double cpu_seconds = 0.0;     // sum tasks × runtime
  double system_joules = 0.0;
  double cpu_joules = 0.0;
  // Ledger-attributed joules (0 without an EnergyLedger); excludes idle.
  double attributed_joules = 0.0;
  double wait_seconds = 0.0;    // summed queue wait
  double makespan_seconds = 0.0;  // last end − first submit
};

class AccountingDb {
 public:
  void Record(const JobRecord& job);

  [[nodiscard]] const std::vector<JobRecord>& records() const { return records_; }
  [[nodiscard]] std::optional<JobRecord> Find(JobId id) const;
  [[nodiscard]] std::vector<JobRecord> ByUser(std::uint32_t user_id) const;
  [[nodiscard]] std::vector<JobRecord> ByState(JobState state) const;
  [[nodiscard]] AccountingTotals Totals() const;

  // sacct-style CSV dump.
  Status ExportCsv(const std::string& path) const;

 private:
  std::vector<JobRecord> records_;
};

}  // namespace eco::slurm
