#include "slurm/ingress.hpp"

#include <algorithm>
#include <limits>

#include "slurm/cluster.hpp"

namespace eco::slurm {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// 64-bit mix (splitmix64 finalizer) so sequential uids and short account
// strings spread across stripes.
std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

const QosRule kUnlimitedRule{};

}  // namespace

const char* AdmitCodeName(AdmitCode code) {
  switch (code) {
    case AdmitCode::kOk: return "ok";
    case AdmitCode::kRateLimited: return "rate-limited";
    case AdmitCode::kAccountLimited: return "account-limited";
    case AdmitCode::kQosRejected: return "qos-rejected";
    case AdmitCode::kShed: return "shed";
    case AdmitCode::kQueueFull: return "queue-full";
    case AdmitCode::kClosed: return "closed";
  }
  return "unknown";
}

SubmitIngress::SubmitIngress(IngressConfig config)
    : config_(std::move(config)) {
  const std::size_t stripes =
      RoundUpPow2(std::max<std::size_t>(1, config_.stripes));
  stripe_mask_ = stripes - 1;
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  low_watermark_ = config_.low_watermark > 0 ? config_.low_watermark
                                             : config_.high_watermark / 2;

  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<telemetry::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  submitted_ = metrics_->GetCounter("eco_ingress_submitted_total");
  admitted_ = metrics_->GetCounter("eco_ingress_admitted_total");
  rate_limited_ = metrics_->GetCounter("eco_ingress_rate_limited_total");
  account_limited_ = metrics_->GetCounter("eco_ingress_account_limited_total");
  qos_rejected_ = metrics_->GetCounter("eco_ingress_qos_rejected_total");
  shed_ = metrics_->GetCounter("eco_ingress_shed_total");
  queue_full_ = metrics_->GetCounter("eco_ingress_queue_full_total");
  closed_rejects_ = metrics_->GetCounter("eco_ingress_closed_total");
  const struct {
    AdmitCode code;
    const char* reason;
  } kRejectReasons[] = {
      {AdmitCode::kRateLimited, "rate"},
      {AdmitCode::kAccountLimited, "account"},
      {AdmitCode::kQosRejected, "qos"},
      {AdmitCode::kShed, "shed"},
      {AdmitCode::kQueueFull, "queue_full"},
      {AdmitCode::kClosed, "closed"},
  };
  for (const auto& entry : kRejectReasons) {
    rejected_by_reason_[static_cast<int>(entry.code)] =
        metrics_->GetCounter(telemetry::LabeledName(
            "eco_ingress_rejected_total", "reason", entry.reason));
  }
  drained_ = metrics_->GetCounter("eco_ingress_drained_total");
  drain_batches_ = metrics_->GetCounter("eco_ingress_drain_batches_total");
  backpressure_engaged_ =
      metrics_->GetCounter("eco_ingress_backpressure_engaged_total");
  backlog_peak_ = metrics_->GetGauge("eco_ingress_backlog_peak");
}

const QosRule& SubmitIngress::RuleFor(const std::string& qos) const {
  auto it = config_.qos.find(qos);
  if (it == config_.qos.end() && !qos.empty()) it = config_.qos.find("");
  return it == config_.qos.end() ? kUnlimitedRule : it->second;
}

std::size_t SubmitIngress::HomeStripe() const {
  // Each thread claims a stable slot once; distinct threads land on
  // distinct stripes until there are more threads than stripes, so
  // producers do not contend on the queue lock in the common case.
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot & stripe_mask_;
}

std::size_t SubmitIngress::UserStripe(std::uint32_t user) const {
  return static_cast<std::size_t>(Mix64(user)) & stripe_mask_;
}

std::size_t SubmitIngress::AccountStripe(const std::string& account) const {
  return static_cast<std::size_t>(
             Mix64(std::hash<std::string>{}(account))) &
         stripe_mask_;
}

// Token buckets are created with `burst` tokens; elapsed time is clamped at
// zero so producers with skewed arrival clocks cannot rewind a bucket.
bool SubmitIngress::TakeUserToken(std::uint32_t user, const QosRule& rule,
                                  double now_s, double* retry_after_s) {
  Stripe& stripe = *stripes_[UserStripe(user)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto [it, inserted] = stripe.user_buckets.try_emplace(
      user, TokenBucket{rule.user_burst, now_s});
  TokenBucket& bucket = it->second;
  if (!inserted && now_s > bucket.last_s) {
    bucket.tokens = std::min(
        rule.user_burst,
        bucket.tokens + (now_s - bucket.last_s) * rule.user_rate_per_s);
    bucket.last_s = now_s;
  }
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  *retry_after_s = (1.0 - bucket.tokens) / rule.user_rate_per_s;
  return false;
}

bool SubmitIngress::TakeAccountToken(const std::string& account,
                                     const QosRule& rule, double now_s,
                                     double* retry_after_s) {
  Stripe& stripe = *stripes_[AccountStripe(account)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto [it, inserted] = stripe.account_buckets.try_emplace(
      account, TokenBucket{rule.account_burst, now_s});
  TokenBucket& bucket = it->second;
  if (!inserted && now_s > bucket.last_s) {
    bucket.tokens = std::min(
        rule.account_burst,
        bucket.tokens + (now_s - bucket.last_s) * rule.account_rate_per_s);
    bucket.last_s = now_s;
  }
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  *retry_after_s = (1.0 - bucket.tokens) / rule.account_rate_per_s;
  return false;
}

void SubmitIngress::RefundUserToken(std::uint32_t user, const QosRule& rule) {
  Stripe& stripe = *stripes_[UserStripe(user)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.user_buckets.find(user);
  if (it == stripe.user_buckets.end()) return;
  it->second.tokens = std::min(rule.user_burst, it->second.tokens + 1.0);
}

AdmitResult SubmitIngress::Submit(JobRequest request, double now_s,
                                  std::uint64_t seq) {
  submitted_->Add(1);
  AdmitResult result;
  result.backpressure = backpressure();

  if (closed()) {
    result.code = AdmitCode::kClosed;
    closed_rejects_->Add(1);
    CountReject(AdmitCode::kClosed);
    return result;
  }

  const QosRule& rule = RuleFor(request.qos);
  if (!rule.enabled) {
    result.code = AdmitCode::kQosRejected;
    qos_rejected_->Add(1);
    CountReject(AdmitCode::kQosRejected);
    return result;
  }
  if (result.backpressure && rule.shed_over_watermark) {
    result.code = AdmitCode::kShed;
    shed_->Add(1);
    CountReject(AdmitCode::kShed);
    return result;
  }
  if (rule.user_rate_per_s > 0.0 &&
      !TakeUserToken(request.user_id, rule, now_s, &result.retry_after_s)) {
    result.code = AdmitCode::kRateLimited;
    rate_limited_->Add(1);
    CountReject(AdmitCode::kRateLimited);
    return result;
  }
  if (rule.account_rate_per_s > 0.0 && !request.account.empty() &&
      !TakeAccountToken(request.account, rule, now_s,
                        &result.retry_after_s)) {
    // The account says no after the user bucket already paid — give the
    // user their token back so an account-limited burst does not also eat
    // the user's own budget.
    if (rule.user_rate_per_s > 0.0) RefundUserToken(request.user_id, rule);
    result.code = AdmitCode::kAccountLimited;
    account_limited_->Add(1);
    CountReject(AdmitCode::kAccountLimited);
    return result;
  }

  // Reserve a queue slot atomically; fetch_add-then-check keeps the cap
  // strict under racing producers.
  const std::size_t before = queued_.fetch_add(1, std::memory_order_relaxed);
  if (before >= config_.max_queued) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    if (rule.user_rate_per_s > 0.0) RefundUserToken(request.user_id, rule);
    result.code = AdmitCode::kQueueFull;
    queue_full_->Add(1);
    CountReject(AdmitCode::kQueueFull);
    return result;
  }
  const std::size_t depth = before + 1;
  backlog_peak_->SetMax(static_cast<double>(depth));
  if (config_.high_watermark > 0 && depth >= config_.high_watermark &&
      !backpressure_.exchange(true, std::memory_order_relaxed)) {
    backpressure_engaged_->Add(1);
  }

  // Seqs are stamped after admission, so the auto-assigned stream stays
  // dense (rejections burn no sequence numbers) and Drain() keeps its O(n)
  // placement fast path.
  result.seq = seq == kAutoSeq
                   ? next_seq_.fetch_add(1, std::memory_order_relaxed)
                   : seq;
  {
    Stripe& stripe = *stripes_[HomeStripe()];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.entries.push_back(Pending{result.seq, std::move(request)});
  }
  admitted_->Add(1);
  // Refresh the flag so an admitted request that itself crossed the high
  // watermark reports the engaged state back to its producer.
  result.backpressure = backpressure();
  return result;
}

std::vector<SubmitIngress::Pending> SubmitIngress::Drain() {
  std::vector<std::vector<Pending>> grabbed(stripes_.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < stripes_.size(); ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i]->mutex);
    grabbed[i].swap(stripes_[i]->entries);
    total += grabbed[i].size();
  }
  if (total == 0) return {};

  queued_.fetch_sub(total, std::memory_order_relaxed);
  if (backpressure_.load(std::memory_order_relaxed) &&
      queued_.load(std::memory_order_relaxed) <= low_watermark_) {
    backpressure_.store(false, std::memory_order_relaxed);
  }

  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t hi = 0;
  for (const auto& chunk : grabbed) {
    for (const Pending& p : chunk) {
      lo = std::min(lo, p.seq);
      hi = std::max(hi, p.seq);
    }
  }

  std::vector<Pending> out;
  // Dense, duplicate-free seq range (auto-seq, or a chunk-partitioned
  // replay): place each entry at seq - lo, one move per entry, no sort.
  if (hi - lo + 1 == total) {
    std::vector<char> used(total, 0);
    bool dense = true;
    for (const auto& chunk : grabbed) {
      for (const Pending& p : chunk) {
        char& slot = used[p.seq - lo];
        if (slot != 0) {
          dense = false;
          break;
        }
        slot = 1;
      }
      if (!dense) break;
    }
    if (dense) {
      out.resize(total);
      for (auto& chunk : grabbed) {
        for (Pending& p : chunk) out[p.seq - lo] = std::move(p);
      }
    }
  }
  if (out.empty()) {
    // Sparse seqs (a racy subset of a partitioned stream): sort pointers,
    // not Pendings — one JobRequest move per entry instead of O(n log n)
    // moves of fat objects. Stable so duplicate seqs (caller error) keep
    // stripe order rather than flapping run-to-run.
    std::vector<Pending*> order;
    order.reserve(total);
    for (auto& chunk : grabbed) {
      for (Pending& p : chunk) order.push_back(&p);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const Pending* a, const Pending* b) {
                       return a->seq < b->seq;
                     });
    out.reserve(total);
    for (Pending* p : order) out.push_back(std::move(*p));
  }

  drained_->Add(total);
  drain_batches_->Add(1);
  return out;
}

std::vector<Result<JobId>> SubmitIngress::DrainInto(ClusterSim& cluster) {
  std::vector<Pending> batch = Drain();
  if (batch.empty()) return {};
  std::vector<JobRequest> requests;
  requests.reserve(batch.size());
  for (Pending& p : batch) requests.push_back(std::move(p.request));
  return cluster.SubmitBatch(std::move(requests));
}

}  // namespace eco::slurm
