#include "slurm/sched_index.hpp"

#include <algorithm>
#include <cmath>

namespace eco::slurm {

// ---------------------------------------------------------------------------
// PendingIndex
// ---------------------------------------------------------------------------

double PendingIndex::GrowingRank(const IndexedJob& job) const {
  if (!multifactor_) return 0.0;
  const MultifactorWeights& w = priority_->weights();
  // Within one user, priority(t) = slope·t + (W_size·size − slope·eligible)
  // + per-user terms, with slope = W_age/max_age shared by every unsaturated
  // job. The parenthesised form is the time-invariant rank.
  const double slope =
      w.max_age_seconds > 0.0 ? w.age / w.max_age_seconds : 0.0;
  return w.size * job.size_factor - slope * job.eligible_time;
}

double PendingIndex::SaturatedRank(const IndexedJob& job) const {
  if (!multifactor_) return 0.0;
  // Age factor pinned at 1: only the size term still separates jobs.
  return priority_->weights().size * job.size_factor;
}

void PendingIndex::Insert(const IndexedJob& job) {
  Bucket& bucket = buckets_[job.user];
  const MultifactorWeights& w = priority_->weights();
  const bool starts_saturated = !multifactor_ || w.max_age_seconds <= 0.0;
  Location loc;
  loc.user = job.user;
  loc.saturated = starts_saturated;
  if (starts_saturated) {
    loc.key = Key{SaturatedRank(job), job.tiebreak};
    bucket.saturated.emplace(loc.key, job);
  } else {
    loc.key = Key{GrowingRank(job), job.tiebreak};
    bucket.growing.emplace(loc.key, job);
    saturation_queue_.push({job.eligible_time + w.max_age_seconds, job.id});
  }
  locations_[job.id] = loc;
}

bool PendingIndex::Erase(JobId id) {
  const auto it = locations_.find(id);
  if (it == locations_.end()) return false;
  const Location& loc = it->second;
  const auto bucket_it = buckets_.find(loc.user);
  Bucket& bucket = bucket_it->second;
  (loc.saturated ? bucket.saturated : bucket.growing).erase(loc.key);
  if (bucket.growing.empty() && bucket.saturated.empty()) {
    buckets_.erase(bucket_it);  // keep Scan() proportional to active users
  }
  locations_.erase(it);
  return true;
}

void PendingIndex::MigrateSaturated(SimTime now) {
  while (!saturation_queue_.empty() && saturation_queue_.top().first <= now) {
    const JobId id = saturation_queue_.top().second;
    saturation_queue_.pop();
    const auto it = locations_.find(id);
    if (it == locations_.end() || it->second.saturated) continue;  // stale
    Location& loc = it->second;
    Bucket& bucket = buckets_.at(loc.user);
    auto node = bucket.growing.extract(loc.key);
    loc.key = Key{SaturatedRank(node.mapped()), node.mapped().tiebreak};
    loc.saturated = true;
    node.key() = loc.key;
    bucket.saturated.insert(std::move(node));
  }
}

PendingIndex::Cursor PendingIndex::Scan(SimTime now) {
  MigrateSaturated(now);
  return Cursor(this, now);
}

// ---------------------------------------------------------------------------
// PendingIndex::Cursor — k-way merge over user bucket heads
// ---------------------------------------------------------------------------

double PendingIndex::Cursor::PriorityOf(const IndexedJob& job,
                                        double fs_factor) const {
  if (!index_->multifactor_) return 0.0;
  // Same expression, same operand order, same cached-factor inputs as the
  // legacy MultifactorPriority::Compute — bitwise identical results.
  return index_->priority_->ComputeFromFactors(
      std::max(0.0, now_ - job.eligible_time), job.size_factor, fs_factor);
}

PendingIndex::Cursor::Cursor(const PendingIndex* index, SimTime now)
    : index_(index), now_(now) {
  users_.reserve(index_->buckets_.size());
  heap_.reserve(index_->buckets_.size());
  for (const auto& [user, bucket] : index_->buckets_) {
    UserState state;
    state.bucket = &bucket;
    state.growing = bucket.growing.begin();
    state.saturated = bucket.saturated.begin();
    // One fair-share evaluation per user per pass; the legacy path evaluates
    // it per job, but Factor() is pure in (user, now, tracker state) so the
    // cached value is bitwise the same.
    state.fs_factor = index_->multifactor_
                          ? index_->fairshare_->Factor(user, now)
                          : 1.0;
    users_.push_back(state);
    PushUserHead(users_.size() - 1);
  }
}

namespace {
// Max-heap on (priority, then earlier submission): `a` sorts below `b` when
// it has lower priority, or equal priority and a later tiebreak.
struct HeadLess {
  template <typename Entry>
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.tiebreak > b.tiebreak;
  }
};
}  // namespace

void PendingIndex::Cursor::PushUserHead(std::size_t slot) {
  UserState& user = users_[slot];
  const bool has_growing = user.growing != user.bucket->growing.end();
  const bool has_saturated = user.saturated != user.bucket->saturated.end();
  if (!has_growing && !has_saturated) return;

  HeapEntry entry;
  entry.user_slot = slot;
  if (has_growing && has_saturated) {
    const double pg = PriorityOf(user.growing->second, user.fs_factor);
    const double ps = PriorityOf(user.saturated->second, user.fs_factor);
    const bool pick_saturated =
        ps > pg || (ps == pg && user.saturated->second.tiebreak <
                                    user.growing->second.tiebreak);
    entry.from_saturated = pick_saturated;
    entry.priority = pick_saturated ? ps : pg;
    entry.tiebreak = (pick_saturated ? user.saturated : user.growing)
                         ->second.tiebreak;
  } else {
    entry.from_saturated = has_saturated;
    const auto& it = has_saturated ? user.saturated : user.growing;
    entry.priority = PriorityOf(it->second, user.fs_factor);
    entry.tiebreak = it->second.tiebreak;
  }
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), HeadLess{});
}

std::optional<PendingIndex::Candidate> PendingIndex::Cursor::Next() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), HeadLess{});
  const HeapEntry top = heap_.back();
  heap_.pop_back();

  UserState& user = users_[top.user_slot];
  auto& it = top.from_saturated ? user.saturated : user.growing;
  Candidate out{&it->second, top.priority};
  ++it;
  PushUserHead(top.user_slot);
  return out;
}

// ---------------------------------------------------------------------------
// NodeTimeline
// ---------------------------------------------------------------------------

void NodeTimeline::Add(JobId id, SimTime release_at, int nodes) {
  releases_[{release_at, id}] = nodes;
  release_of_[id] = release_at;
}

void NodeTimeline::Remove(JobId id) {
  const auto it = release_of_.find(id);
  if (it == release_of_.end()) return;
  releases_.erase({it->second, id});
  release_of_.erase(it);
}

NodeTimeline::Shadow NodeTimeline::ComputeShadow(int free_now, int needed,
                                                 SimTime now) const {
  Shadow shadow;
  shadow.time = now;
  int avail = free_now;
  for (const auto& [key, nodes] : releases_) {
    if (avail >= needed) break;
    avail += nodes;
    shadow.time = key.first;
    if (avail >= needed) {
      shadow.spare_nodes = avail - needed;
      shadow.reserved = true;
      break;
    }
  }
  return shadow;
}

// ---------------------------------------------------------------------------
// Indexed EASY planner
// ---------------------------------------------------------------------------

IndexedPlan PlanScheduleIndexed(SchedulerPolicy policy, PendingIndex& pending,
                                const NodeTimeline& timeline, int free_nodes,
                                SimTime now, int backfill_max_job_test) {
  IndexedPlan plan;
  if (pending.empty()) return plan;

  auto cursor = pending.Scan(now);
  auto candidate = cursor.Next();

  // Start in priority order while jobs fit.
  while (candidate && candidate->job->nodes_needed <= free_nodes) {
    ++plan.candidates;
    plan.starts.push_back({candidate->job->id, candidate->priority});
    free_nodes -= candidate->job->nodes_needed;
    candidate = cursor.Next();
  }
  if (!candidate || policy == SchedulerPolicy::kFifo) return plan;

  // EASY backfill: reserve the shadow for the blocked head, then admit
  // lower-priority jobs that finish before it or fit beside it.
  ++plan.candidates;
  const int head_nodes = candidate->job->nodes_needed;
  const auto shadow = timeline.ComputeShadow(free_nodes, head_nodes, now);
  if (!shadow.reserved) return plan;

  int spare = shadow.spare_nodes;
  std::uint64_t tested = 0;
  while ((candidate = cursor.Next())) {
    if (free_nodes <= 0) break;  // nothing further can fit
    if (backfill_max_job_test > 0 &&
        ++tested > static_cast<std::uint64_t>(backfill_max_job_test)) {
      break;
    }
    ++plan.candidates;
    const IndexedJob& job = *candidate->job;
    if (job.nodes_needed > free_nodes) continue;
    const bool ends_before_shadow =
        now + job.time_limit_s <= shadow.time + 1e-9;
    const bool fits_beside_head = job.nodes_needed <= spare;
    if (ends_before_shadow || fits_beside_head) {
      plan.starts.push_back({job.id, candidate->priority});
      ++plan.backfilled;
      free_nodes -= job.nodes_needed;
      if (fits_beside_head && !ends_before_shadow) {
        spare -= job.nodes_needed;
      }
    }
  }
  return plan;
}

}  // namespace eco::slurm
