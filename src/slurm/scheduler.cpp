#include "slurm/scheduler.hpp"

#include <algorithm>
#include <cmath>

namespace eco::slurm {

namespace {

// Fibonacci mix so near-sequential uids (1000, 1001, ...) spread uniformly
// across buckets instead of striding through a handful of them.
std::size_t MixUser(std::uint32_t user) {
  std::uint64_t x = user;
  x ^= x >> 16;
  x *= 0x9e3779b97f4a7c15ull;
  x ^= x >> 32;
  return static_cast<std::size_t>(x);
}

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FairShareTracker::FairShareTracker(double half_life_seconds,
                                   std::size_t buckets)
    : half_life_(half_life_seconds),
      buckets_(RoundUpPow2(std::max<std::size_t>(1, buckets))) {}

std::size_t FairShareTracker::BucketOf(std::uint32_t user) const {
  return MixUser(user) & (buckets_.size() - 1);
}

void FairShareTracker::AddUsage(std::uint32_t user, double cpu_seconds,
                                SimTime now) {
  auto [it, inserted] = buckets_[BucketOf(user)].usage.try_emplace(user);
  if (inserted) ++user_count_;
  Usage& u = it->second;
  const double age = std::max(0.0, now - u.as_of);
  u.amount = u.amount * std::pow(0.5, age / half_life_) + cpu_seconds;
  u.as_of = now;
  // The total decays at the same rate as every entry, so bringing it forward
  // to `now` and adding the fresh usage keeps it equal (up to rounding) to
  // Σ_u DecayedUsage(u, now).
  const double total_age = std::max(0.0, now - total_.as_of);
  total_.amount = total_.amount * std::pow(0.5, total_age / half_life_) +
                  cpu_seconds;
  total_.as_of = now;
}

double FairShareTracker::DecayedUsage(std::uint32_t user, SimTime now) const {
  const auto& usage = buckets_[BucketOf(user)].usage;
  const auto it = usage.find(user);
  if (it == usage.end()) return 0.0;
  const double age = std::max(0.0, now - it->second.as_of);
  return it->second.amount * std::pow(0.5, age / half_life_);
}

double FairShareTracker::Factor(std::uint32_t user, SimTime now) const {
  if (user_count_ == 0) return 1.0;
  const double total_age = std::max(0.0, now - total_.as_of);
  const double total =
      total_.amount * std::pow(0.5, total_age / half_life_);
  if (total <= 0.0) return 1.0;
  const double average = total / static_cast<double>(user_count_);
  const double mine = DecayedUsage(user, now);
  if (average <= 0.0) return 1.0;
  // Slurm's classic fair-share curve: 2^(-usage/share).
  return std::pow(2.0, -mine / average);
}

double MultifactorPriority::SizeFactor(int num_tasks, int min_nodes) const {
  return cluster_cores_ > 0
             ? std::min(1.0, static_cast<double>(num_tasks * min_nodes) /
                                 cluster_cores_)
             : 0.0;
}

double MultifactorPriority::ComputeFromFactors(double wait_seconds,
                                               double size_factor,
                                               double fs_factor) const {
  const double age_factor =
      std::min(1.0, wait_seconds / weights_.max_age_seconds);
  return weights_.age * age_factor + weights_.size * size_factor +
         weights_.fairshare * fs_factor + weights_.qos;
}

double MultifactorPriority::Compute(const JobRecord& job, SimTime now,
                                    const FairShareTracker& fairshare) const {
  const double wait = std::max(0.0, now - job.eligible_time);
  return ComputeFromFactors(
      wait, SizeFactor(job.request.num_tasks, job.request.min_nodes),
      fairshare.Factor(job.request.user_id, now));
}

std::vector<JobId> PlanSchedule(SchedulerPolicy policy,
                                std::vector<PlanInput> pending,
                                const std::vector<RunningInput>& running,
                                int free_nodes, int total_nodes, SimTime now) {
  std::vector<JobId> to_start;
  if (pending.empty() || total_nodes <= 0) return to_start;

  std::sort(pending.begin(), pending.end(),
            [](const PlanInput& a, const PlanInput& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              return a.tiebreak < b.tiebreak;
            });

  std::size_t head = 0;
  // Start in priority order while jobs fit.
  while (head < pending.size() && pending[head].nodes_needed <= free_nodes) {
    to_start.push_back(pending[head].id);
    free_nodes -= pending[head].nodes_needed;
    ++head;
  }
  if (policy == SchedulerPolicy::kFifo || head >= pending.size()) {
    return to_start;
  }

  // EASY backfill. The blocked head job reserves the earliest instant enough
  // nodes will be free, assuming running jobs end at their time limits.
  const PlanInput& blocked = pending[head];
  struct Release {
    SimTime when;
    int nodes;
  };
  std::vector<Release> releases;
  for (const auto& r : running) releases.push_back({r.expected_end, r.nodes_held});
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) { return a.when < b.when; });

  SimTime shadow_time = now;
  int avail = free_nodes;
  int spare_at_shadow = 0;
  bool reserved = false;
  for (const auto& release : releases) {
    if (avail >= blocked.nodes_needed) break;
    avail += release.nodes;
    shadow_time = release.when;
    if (avail >= blocked.nodes_needed) {
      spare_at_shadow = avail - blocked.nodes_needed;
      reserved = true;
      break;
    }
  }
  if (!reserved) {
    if (avail >= blocked.nodes_needed) {
      // No running jobs; head is only blocked by jobs we just started — no
      // backfill window can be computed, bail out conservatively.
      return to_start;
    }
    return to_start;  // head can never run; nothing sensible to backfill
  }

  // Backfill candidates: lower-priority pending jobs that fit in the current
  // free nodes AND either finish before the shadow time or fit inside the
  // nodes that remain spare once the head starts.
  for (std::size_t i = head + 1; i < pending.size(); ++i) {
    const PlanInput& candidate = pending[i];
    if (candidate.nodes_needed > free_nodes) continue;
    const bool ends_before_shadow =
        now + candidate.time_limit_s <= shadow_time + 1e-9;
    const bool fits_beside_head = candidate.nodes_needed <= spare_at_shadow;
    if (ends_before_shadow || fits_beside_head) {
      to_start.push_back(candidate.id);
      free_nodes -= candidate.nodes_needed;
      if (fits_beside_head && !ends_before_shadow) {
        spare_at_shadow -= candidate.nodes_needed;
      }
    }
  }
  return to_start;
}

}  // namespace eco::slurm
