#include "slurm/energy_ledger.hpp"

#include <algorithm>

namespace eco::slurm {

void EnergyLedger::Bind(telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry_ = registry;
  metric_attributed_ = registry->GetGauge("eco_ledger_attributed_joules");
  metric_idle_ = registry->GetGauge("eco_ledger_idle_joules");
  metric_jobs_ = registry->GetCounter("eco_ledger_jobs_finalized_total");
  metric_samples_ = registry->GetCounter("eco_ledger_samples_total");
}

void EnergyLedger::SetNodeCount(std::size_t nodes) {
  occupancy_.resize(nodes);
}

LedgerJobEntry* EnergyLedger::EntryFor(const JobRecord& job) {
  auto [it, inserted] = jobs_.try_emplace(job.id);
  LedgerJobEntry& entry = it->second;
  if (inserted) {
    entry.job = job.id;
    entry.user = job.request.user_id;
    entry.account = job.request.account;
    entry.partition = job.request.partition;
  }
  return &entry;
}

void EnergyLedger::BeginSpan(std::size_t node, const JobRecord& job,
                             double share) {
  if (node >= occupancy_.size()) return;
  Occupant occupant;
  occupant.job = job.id;
  occupant.share = std::clamp(share, 0.0, 1.0);
  occupant.entry = EntryFor(job);
  occupancy_[node].push_back(occupant);
  job_nodes_[job.id].push_back(node);
}

void EnergyLedger::EndSpans(JobId job) {
  const auto it = job_nodes_.find(job);
  if (it == job_nodes_.end()) return;
  for (const std::size_t node : it->second) {
    auto& occupants = occupancy_[node];
    occupants.erase(std::remove_if(occupants.begin(), occupants.end(),
                                   [job](const Occupant& o) {
                                     return o.job == job;
                                   }),
                    occupants.end());
  }
  job_nodes_.erase(it);
}

void EnergyLedger::OnEnergySample(std::size_t node, double joules) {
  if (node >= occupancy_.size()) return;
  ++samples_;
  if (metric_samples_ != nullptr) metric_samples_->Add(1);
  const auto& occupants = occupancy_[node];
  if (occupants.empty()) {
    idle_joules_ += joules;
  } else {
    double total_share = 0.0;
    for (const Occupant& o : occupants) total_share += o.share;
    if (total_share < 1.0) {
      // The un-sold fraction of a partially-shared node stays idle energy.
      idle_joules_ += joules * (1.0 - total_share);
    }
    // Oversubscribed shares (sum > 1) normalise so a node never bills more
    // joules than it drew.
    const double norm = std::max(total_share, 1.0);
    for (const Occupant& o : occupants) {
      const double charged = joules * (o.share / norm);
      o.entry->joules += charged;
      attributed_joules_ += charged;
    }
  }
  if (metric_attributed_ != nullptr) {
    metric_attributed_->Set(attributed_joules_);
  }
  if (metric_idle_ != nullptr) metric_idle_->Set(idle_joules_);
}

void EnergyLedger::FinalizeJob(const JobRecord& job) {
  LedgerJobEntry* entry = EntryFor(job);
  if (entry->finalized) return;
  entry->finalized = true;
  entry->run_seconds = std::max(0.0, job.RunSeconds());
  ++finalized_;
  if (metric_jobs_ != nullptr) metric_jobs_->Add(1);

  auto& user = by_user_[entry->user];
  user.joules += entry->joules;
  ++user.jobs;
  auto& account = by_account_[entry->account];
  account.joules += entry->joules;
  ++account.jobs;
  auto& partition = by_partition_[entry->partition];
  partition.joules += entry->joules;
  ++partition.jobs;
  partition.edp_joule_seconds += entry->joules * entry->run_seconds;

  if (registry_ != nullptr) {
    auto [it, inserted] = metric_edp_.try_emplace(entry->partition, nullptr);
    if (inserted) {
      it->second = registry_->GetGauge(telemetry::LabeledName(
          "eco_ledger_edp_joule_seconds", "partition", entry->partition));
    }
    it->second->Set(partition.edp_joule_seconds);
  }
}

double EnergyLedger::JobJoules(JobId id) const {
  const auto it = jobs_.find(id);
  return it != jobs_.end() ? it->second.joules : 0.0;
}

Json EnergyLedger::ToJson() const {
  JsonArray jobs;
  for (const auto& [id, entry] : jobs_) {
    jobs.push_back(
        Json(JsonObject{{"job", Json(static_cast<std::uint64_t>(entry.job))},
                        {"user", Json(static_cast<std::uint64_t>(entry.user))},
                        {"account", Json(entry.account)},
                        {"partition", Json(entry.partition)},
                        {"joules", Json(entry.joules)},
                        {"run_seconds", Json(entry.run_seconds)},
                        {"finalized", Json(entry.finalized)}}));
  }
  const auto aggregate = [](const LedgerAggregate& a, bool edp) {
    JsonObject out{{"joules", Json(a.joules)}, {"jobs", Json(a.jobs)}};
    if (edp) out["edp_joule_seconds"] = Json(a.edp_joule_seconds);
    return Json(std::move(out));
  };
  JsonObject by_user;
  for (const auto& [user, a] : by_user_) {
    by_user[std::to_string(user)] = aggregate(a, false);
  }
  JsonObject by_account;
  for (const auto& [name, a] : by_account_) {
    by_account[name.empty() ? "(none)" : name] = aggregate(a, false);
  }
  JsonObject by_partition;
  for (const auto& [name, a] : by_partition_) {
    by_partition[name] = aggregate(a, true);
  }
  return Json(JsonObject{{"attributed_joules", Json(attributed_joules_)},
                         {"idle_joules", Json(idle_joules_)},
                         {"samples", Json(samples_)},
                         {"finalized_jobs", Json(finalized_)},
                         {"jobs", Json(std::move(jobs))},
                         {"by_user", Json(std::move(by_user))},
                         {"by_account", Json(std::move(by_account))},
                         {"by_partition", Json(std::move(by_partition))}});
}

}  // namespace eco::slurm
