// obsd — the observability endpoint daemon.
//
// A deliberately small HTTP/1.1 server (blocking accept on one thread, no
// dependencies, loopback by default) exposing the observability plane:
//
//   GET /healthz                     -> "ok"
//   GET /metrics                     -> MetricsRegistry::PrometheusText(),
//                                       byte-identical to a direct call
//   GET /sdiag                       -> commands::Sdiag() text
//   GET /timeseries                  -> JSON list of tracked series names
//   GET /timeseries?name=X&r=N       -> one series at resolution N (0..2)
//
// This is the scrape surface a Prometheus/Grafana stack points at. It is
// NOT a general web server: one request per connection, GET only, no
// keep-alive, no TLS, no %-escapes in queries — metric names are plain
// [a-zA-Z0-9_:] so none are needed.
//
// Thread-safety: /metrics and /timeseries read structures designed for
// concurrent access (sharded counters, a mutexed store). /sdiag walks
// ClusterSim state and is only safe while the sim thread is parked (the
// chronus obsd command serves after its run completes; tests do the same).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/telemetry/metrics.hpp"
#include "common/telemetry/timeseries.hpp"

namespace eco::slurm {

class ClusterSim;

struct ObsServerConfig {
  std::string bind_address = "127.0.0.1";
  // 0 = ephemeral: the kernel picks; read the result from port().
  std::uint16_t port = 0;
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::TimeSeriesStore* timeseries = nullptr;
  // Enables /sdiag. See the thread-safety note above.
  const ClusterSim* cluster = nullptr;
};

class ObsServer {
 public:
  explicit ObsServer(ObsServerConfig config);
  ~ObsServer();
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  // Binds, listens, and starts the accept thread.
  Status Start();
  // Idempotent; joins the accept thread.
  void Stop();

  // The bound port (resolves an ephemeral request); 0 before Start().
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(); }

  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  // Routes a request target ("/metrics", "/timeseries?name=x&r=1") to a
  // response. Exposed so unit tests can exercise routing without sockets.
  [[nodiscard]] Response Handle(const std::string& target) const;

 private:
  void AcceptLoop();
  void ServeOne(int client_fd);

  ObsServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace eco::slurm
