/*
 * Slurm-compatible job-submit plugin ABI.
 *
 * This header mirrors the subset of Slurm's C plugin interface that the
 * paper's job_submit_eco plugin uses (slurm/src/plugins/job_submit/):
 *
 *   extern int job_submit(job_desc_msg_t *job_desc, uint32_t submit_uid,
 *                         char **err_msg);
 *
 * plus the job_descriptor fields §4.2.2 lists as the knobs the eco plugin
 * turns: num_tasks, threads_per_core (the paper calls it threads_per_cpu),
 * cpu_freq_min / cpu_freq_max, and the comment string carrying the
 * "#SBATCH --comment chronus" opt-in.
 *
 * Deviations from real Slurm, chosen for memory safety inside a simulator:
 * string fields point into caller-owned fixed-capacity buffers (capacities
 * below); plugins edit them in place instead of xstrdup-replacing pointers.
 */
#pragma once

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define SLURM_SUCCESS 0
#define SLURM_ERROR (-1)

/* Slurm's "value not set" sentinels. */
#define NO_VAL ((uint32_t)0xfffffffe)
#define NO_VAL16 ((uint16_t)0xfffe)

#define JOB_DESC_NAME_LEN 64
#define JOB_DESC_COMMENT_LEN 256
#define JOB_DESC_PARTITION_LEN 64
#define JOB_DESC_SCRIPT_LEN 4096
#define PLUGIN_ERR_MSG_LEN 256

typedef struct job_descriptor {
  uint32_t job_id;
  uint32_t user_id;
  uint32_t min_nodes;        /* nodes requested (NO_VAL = unset, default 1) */
  uint32_t num_tasks;        /* --ntasks */
  uint16_t threads_per_core; /* --threads-per-core / --ntasks-per-core */
  uint32_t cpu_freq_min;     /* kHz, NO_VAL = not pinned */
  uint32_t cpu_freq_max;     /* kHz, NO_VAL = not pinned */
  uint32_t time_limit;       /* minutes, NO_VAL = partition default */
  uint32_t priority;         /* NO_VAL = let the priority plugin decide */
  char* name;                /* capacity JOB_DESC_NAME_LEN */
  char* comment;             /* capacity JOB_DESC_COMMENT_LEN */
  char* partition;           /* capacity JOB_DESC_PARTITION_LEN */
  char* script;              /* capacity JOB_DESC_SCRIPT_LEN */
} job_desc_msg_t;

/*
 * Plugin entry points. Real Slurm resolves these via dlsym on a shared
 * object; the simulator registers the same structure statically (see
 * PluginRegistry) so plugins compile unmodified either way.
 */
typedef struct job_submit_plugin_ops {
  const char* plugin_name;    /* human-readable */
  const char* plugin_type;    /* must be "job_submit/<something>" */
  uint32_t plugin_version;
  int (*init)(void);
  void (*fini)(void);
  int (*job_submit)(job_desc_msg_t* job_desc, uint32_t submit_uid,
                    char** err_msg);
  int (*job_modify)(job_desc_msg_t* job_desc, uint32_t submit_uid,
                    char** err_msg);
} job_submit_plugin_ops_t;

/*
 * AcctGatherEnergy plugin family — how real Slurm measures per-node energy
 * for accounting (acct_gather_energy/ipmi, acct_gather_energy/rapl).
 * slurmd polls energy_read() periodically; consumed_energy is cumulative
 * joules since the counter was last reset.
 */
typedef struct acct_gather_energy {
  uint64_t consumed_joules; /* cumulative since reset */
  uint32_t current_watts;
  uint64_t poll_time;       /* seconds, source-defined epoch */
} acct_gather_energy_t;

typedef struct acct_gather_energy_plugin_ops {
  const char* plugin_name;
  const char* plugin_type; /* must be "acct_gather_energy/<something>" */
  uint32_t plugin_version;
  int (*init)(void);
  void (*fini)(void);
  int (*energy_read)(acct_gather_energy_t* energy);
} acct_gather_energy_plugin_ops_t;

#ifdef __cplusplus
} /* extern "C" */
#endif
