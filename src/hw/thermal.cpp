#include "hw/thermal.hpp"

#include <cmath>

namespace eco::hw {

double ThermalModel::SteadyState(double cpu_watts) const {
  return params_.ambient_celsius +
         params_.thermal_resistance_k_per_w * cpu_watts;
}

void ThermalModel::Advance(double dt_seconds, double cpu_watts) {
  if (dt_seconds <= 0.0) return;
  const double target = SteadyState(cpu_watts);
  const double decay = std::exp(-dt_seconds / params_.time_constant_s);
  temp_ = target + (temp_ - target) * decay;
}

}  // namespace eco::hw
