// RAPL (Running Average Power Limit) energy-counter simulator.
//
// Intel/AMD expose package energy through an MSR that counts in
// energy-status units (typically 61 µJ) in a 32-bit register — so the
// counter wraps every few hours under load, and consumers must unwrap.
// Slurm's acct_gather_energy/rapl reads exactly this counter; modelling the
// wraparound here means the plugin and its tests exercise the same failure
// mode real deployments hit.
#pragma once

#include <cstdint>

namespace eco::hw {

class RaplCounter {
 public:
  // Default unit: 2^-14 J ≈ 61 µJ (ENERGY_STATUS_UNITS on most parts).
  explicit RaplCounter(double joules_per_unit = 1.0 / 16384.0)
      : joules_per_unit_(joules_per_unit) {}

  // Accrues `watts` for `dt_seconds` into the counter (called from the node
  // simulation's energy tap).
  void Accumulate(double watts, double dt_seconds);

  // The raw 32-bit MSR value (wraps!).
  [[nodiscard]] std::uint32_t ReadMsr() const;

  // Total joules accumulated since construction (ground truth, no wrap).
  [[nodiscard]] double TrueJoules() const { return true_joules_; }

  [[nodiscard]] double joules_per_unit() const { return joules_per_unit_; }

  // Helper for consumers: given the previous and current raw MSR readings,
  // the unwrapped delta in joules (assumes at most one wrap between reads).
  [[nodiscard]] double DeltaJoules(std::uint32_t prev_msr,
                                   std::uint32_t curr_msr) const;

 private:
  double joules_per_unit_;
  double true_joules_ = 0.0;
  // Fractional units not yet visible in the integer counter.
  double residual_units_ = 0.0;
  std::uint64_t total_units_ = 0;
};

}  // namespace eco::hw
