// Hardware description of the simulated node.
//
// The paper's testbed is a Lenovo ThinkSystem SR650 with an AMD EPYC 7502P
// (32 cores, 2 threads/core, cpufreq frequencies {1.5, 2.2, 2.5} GHz) and
// 256 GB of RAM. `MachineSpec::Epyc7502P()` reproduces that machine; smaller
// profiles exist for fast tests and the multi-node example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace eco::hw {

struct CpuSpec {
  std::string model_name;
  int cores = 1;
  int threads_per_core = 1;
  // Sorted ascending, in kHz (mirrors scaling_available_frequencies).
  std::vector<KiloHertz> available_frequencies;

  [[nodiscard]] KiloHertz MinFrequency() const;
  [[nodiscard]] KiloHertz MaxFrequency() const;
  // Closest supported frequency to `f` (ties resolve downward). Mirrors how
  // cpufreq clamps userspace requests to the frequency table.
  [[nodiscard]] KiloHertz NearestFrequency(KiloHertz f) const;
  [[nodiscard]] bool SupportsFrequency(KiloHertz f) const;
  [[nodiscard]] int MaxThreads() const { return cores * threads_per_core; }
};

struct MachineSpec {
  std::string hostname;
  CpuSpec cpu;
  std::uint64_t ram_bytes = 0;

  // The paper's single test node.
  static MachineSpec Epyc7502P(std::string hostname = "host114");
  // A small 4-core node for fast unit tests.
  static MachineSpec TestNode(std::string hostname = "testnode");
  // A contrasting production profile ("All supercomputers are built
  // differently", §3.1): 20 cores, HT, a five-step frequency ladder —
  // exercises Chronus's multi-system handling with a distinct system hash
  // and candidate space.
  static MachineSpec XeonGold6230(std::string hostname = "xeonnode");
};

}  // namespace eco::hw
