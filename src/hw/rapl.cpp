#include "hw/rapl.hpp"

#include <cmath>

namespace eco::hw {

void RaplCounter::Accumulate(double watts, double dt_seconds) {
  if (watts <= 0.0 || dt_seconds <= 0.0) return;
  const double joules = watts * dt_seconds;
  true_joules_ += joules;
  residual_units_ += joules / joules_per_unit_;
  const double whole = std::floor(residual_units_);
  total_units_ += static_cast<std::uint64_t>(whole);
  residual_units_ -= whole;
}

std::uint32_t RaplCounter::ReadMsr() const {
  return static_cast<std::uint32_t>(total_units_ & 0xffffffffull);
}

double RaplCounter::DeltaJoules(std::uint32_t prev_msr,
                                std::uint32_t curr_msr) const {
  const std::uint64_t delta_units =
      curr_msr >= prev_msr
          ? static_cast<std::uint64_t>(curr_msr - prev_msr)
          : (1ull << 32) - prev_msr + curr_msr;  // one wraparound
  return static_cast<double>(delta_units) * joules_per_unit_;
}

}  // namespace eco::hw
