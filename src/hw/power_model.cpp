#include "hw/power_model.hpp"

#include <algorithm>
#include <cmath>

namespace eco::hw {

double PowerModel::Voltage(KiloHertz f) const {
  const double f_ghz = KiloHertzToGHz(f);
  const double knee_ghz = KiloHertzToGHz(params_.voltage_floor_freq);
  if (f_ghz <= knee_ghz) return params_.voltage_floor_volts;
  return params_.voltage_floor_volts +
         params_.voltage_slope_per_ghz * (f_ghz - knee_ghz);
}

double PowerModel::CpuPower(int active_cores, KiloHertz f, bool ht,
                            double utilization) const {
  utilization = std::clamp(utilization, 0.0, 1.0);
  if (active_cores <= 0) return params_.uncore_idle_watts;

  const double f_ghz = KiloHertzToGHz(f);
  const double v = Voltage(f);
  const double dyn_scale =
      params_.stall_power_fraction +
      (1.0 - params_.stall_power_fraction) * utilization;
  double per_core = params_.core_static_watts +
                    params_.core_dynamic_coeff * f_ghz * v * v * dyn_scale;
  if (ht) per_core *= params_.ht_power_factor;

  const double uncore =
      params_.uncore_base_watts + params_.uncore_per_ghz_watts * f_ghz;
  return uncore + per_core * active_cores;
}

double PowerModel::FanPower(double cpu_temp_celsius) const {
  const double above = std::max(0.0, cpu_temp_celsius - params_.fan_knee_celsius);
  return params_.fan_base_watts + params_.fan_per_celsius_watts * above;
}

PowerBreakdown PowerModel::SystemPower(int active_cores, KiloHertz f, bool ht,
                                       double utilization,
                                       double cpu_temp_celsius) const {
  PowerBreakdown out;
  out.cpu_watts = CpuPower(active_cores, f, ht, utilization);
  out.fan_watts = FanPower(cpu_temp_celsius);
  out.platform_watts = params_.platform_watts;
  out.system_watts = out.cpu_watts + out.fan_watts + out.platform_watts;
  return out;
}

}  // namespace eco::hw
