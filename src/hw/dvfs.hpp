// DVFS governor models.
//
// Slurm's default behaviour (the paper's baseline) corresponds to the
// `performance` governor — all cores at maximum frequency. The related work
// [21] compares against Linux `ondemand`. The eco plugin effectively selects
// `userspace` with a pinned frequency via the job's --cpu-freq bounds.
#pragma once

#include <string>

#include "common/units.hpp"
#include "hw/cpu_spec.hpp"

namespace eco::hw {

enum class Governor { kPerformance, kOndemand, kPowersave, kUserspace };

const char* GovernorName(Governor g);
// Parses a governor name; returns false for unknown names.
bool ParseGovernor(const std::string& name, Governor& out);

struct DvfsParams {
  // `ondemand` re-evaluates at this cadence.
  double sampling_interval_s = 1.0;
  // Above this utilization ondemand jumps straight to max frequency.
  double up_threshold = 0.80;
  // Below this it steps down one frequency level per sample.
  double down_threshold = 0.40;
};

// Stateful frequency selector for one CPU package.
class DvfsPolicy {
 public:
  DvfsPolicy(const CpuSpec& cpu, Governor governor, DvfsParams params = {});

  [[nodiscard]] Governor governor() const { return governor_; }
  [[nodiscard]] KiloHertz frequency() const { return freq_; }
  [[nodiscard]] double sampling_interval() const {
    return params_.sampling_interval_s;
  }

  // Pins the frequency (userspace governor). The request is clamped to the
  // nearest supported frequency, mirroring cpufreq.
  void Pin(KiloHertz f);

  // One governor sampling step given the current utilization; returns the
  // frequency to run at until the next step.
  KiloHertz Step(double utilization);

 private:
  CpuSpec cpu_;
  Governor governor_;
  DvfsParams params_;
  KiloHertz freq_;
};

}  // namespace eco::hw
