#include "hw/dvfs.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace eco::hw {

const char* GovernorName(Governor g) {
  switch (g) {
    case Governor::kPerformance:
      return "performance";
    case Governor::kOndemand:
      return "ondemand";
    case Governor::kPowersave:
      return "powersave";
    case Governor::kUserspace:
      return "userspace";
  }
  return "?";
}

bool ParseGovernor(const std::string& name, Governor& out) {
  const std::string lower = ToLower(name);
  if (lower == "performance") {
    out = Governor::kPerformance;
  } else if (lower == "ondemand") {
    out = Governor::kOndemand;
  } else if (lower == "powersave") {
    out = Governor::kPowersave;
  } else if (lower == "userspace") {
    out = Governor::kUserspace;
  } else {
    return false;
  }
  return true;
}

DvfsPolicy::DvfsPolicy(const CpuSpec& cpu, Governor governor, DvfsParams params)
    : cpu_(cpu), governor_(governor), params_(params) {
  switch (governor_) {
    case Governor::kPowersave:
      freq_ = cpu_.MinFrequency();
      break;
    case Governor::kPerformance:
    case Governor::kOndemand:
    case Governor::kUserspace:
      freq_ = cpu_.MaxFrequency();
      break;
  }
}

void DvfsPolicy::Pin(KiloHertz f) { freq_ = cpu_.NearestFrequency(f); }

KiloHertz DvfsPolicy::Step(double utilization) {
  switch (governor_) {
    case Governor::kPerformance:
      freq_ = cpu_.MaxFrequency();
      break;
    case Governor::kPowersave:
      freq_ = cpu_.MinFrequency();
      break;
    case Governor::kUserspace:
      break;  // pinned
    case Governor::kOndemand: {
      const auto& table = cpu_.available_frequencies;
      if (utilization >= params_.up_threshold) {
        freq_ = cpu_.MaxFrequency();
      } else if (utilization < params_.down_threshold) {
        // Step down one level per sample, like the kernel governor's
        // conservative descent.
        const auto it = std::find(table.begin(), table.end(), freq_);
        if (it != table.end() && it != table.begin()) freq_ = *(it - 1);
      }
      break;
    }
  }
  return freq_;
}

}  // namespace eco::hw
