// Node power model.
//
// System power decomposes as
//
//   P_sys = P_platform + P_uncore(f) + sum_over_active_cores P_core(f, ht, u)
//           + P_fan(T_cpu)
//
// with the per-core term combining static leakage and dynamic power
// `k · f · V(f)²` (the classic DVFS law). V(f) has a *voltage floor*: below
// `voltage_floor_freq` the regulator cannot drop voltage further, so power
// scales roughly linearly in f — this is what makes 1.5 GHz save only a
// little over 2.2 GHz on the paper's EPYC 7502P while 2.5 GHz costs a lot
// (it sits above the knee of the V/f curve).
//
// Calibration reproduces the paper's measurements in shape:
//   32 c @ 2.5 GHz (standard): ~120 W CPU, ~216 W system
//   32 c @ 2.2 GHz (best):     ~ 97 W CPU, ~190 W system
//   32 c @ 1.5 GHz:            ~ 175 W system
#pragma once

#include "common/units.hpp"
#include "hw/cpu_spec.hpp"

namespace eco::hw {

struct PowerModelParams {
  // Chassis, RAM, NICs, disks — everything that is not CPU or fans.
  double platform_watts = 70.0;
  // SoC / IO-die power: base + slope · f_ghz while any core is active.
  double uncore_base_watts = 12.0;
  double uncore_per_ghz_watts = 3.0;
  double uncore_idle_watts = 14.0;  // package power with all cores parked
  // Per-core static (leakage + clocks) when unparked.
  double core_static_watts = 1.35;
  // Dynamic coefficient: P_dyn = k · f_ghz · V(f)².
  double core_dynamic_coeff = 0.88;
  // V(f): flat at `voltage_floor_volts` up to `voltage_floor_freq`, then
  // linear with `voltage_slope_per_ghz`.
  double voltage_floor_volts = 0.95;
  KiloHertz voltage_floor_freq = GHzToKiloHertz(2.2);
  double voltage_slope_per_ghz = 0.78;
  // Hyper-threading keeps both hardware threads' pipelines fed; it costs a
  // small per-core power increase.
  double ht_power_factor = 1.008;
  // Fraction of dynamic power that is burned even when the core only stalls
  // on memory (clock tree, speculation). u=1 jobs pay full dynamic power.
  double stall_power_fraction = 0.35;
  // Fans: baseline + proportional above `fan_knee_celsius`.
  double fan_base_watts = 5.0;
  double fan_per_celsius_watts = 0.25;
  double fan_knee_celsius = 40.0;

  static PowerModelParams Epyc7502P() { return PowerModelParams{}; }
};

struct PowerBreakdown {
  double cpu_watts = 0.0;   // uncore + cores (what IPMI's CPU sensor reports)
  double fan_watts = 0.0;
  double platform_watts = 0.0;
  double system_watts = 0.0;  // total DC draw
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelParams params) : params_(params) {}

  [[nodiscard]] const PowerModelParams& params() const { return params_; }

  // Core supply voltage at frequency `f`.
  [[nodiscard]] double Voltage(KiloHertz f) const;

  // Package power for `active_cores` cores at frequency `f`.
  // `utilization` in [0,1] scales the dynamic component above the stall
  // floor; `ht` indicates both hardware threads are in use.
  [[nodiscard]] double CpuPower(int active_cores, KiloHertz f, bool ht,
                                double utilization) const;

  [[nodiscard]] double FanPower(double cpu_temp_celsius) const;

  // Full node draw given CPU load state and current CPU temperature.
  [[nodiscard]] PowerBreakdown SystemPower(int active_cores, KiloHertz f,
                                           bool ht, double utilization,
                                           double cpu_temp_celsius) const;

 private:
  PowerModelParams params_;
};

}  // namespace eco::hw
