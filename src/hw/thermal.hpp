// First-order thermal model of the CPU package.
//
// The die temperature relaxes exponentially toward a steady state
// `T_amb + R_th · P_cpu` with time constant tau. The paper reports average
// CPU temperature dropping from 62.8 °C (standard config, ~120 W CPU) to
// 53.8 °C (best config, ~97 W) — an R_th around 0.3 K/W over ~25 °C ambient,
// which is what the defaults encode.
#pragma once

namespace eco::hw {

struct ThermalParams {
  double ambient_celsius = 25.0;
  double thermal_resistance_k_per_w = 0.31;
  double time_constant_s = 40.0;

  static ThermalParams Epyc7502P() { return ThermalParams{}; }
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalParams params)
      : params_(params), temp_(params.ambient_celsius) {}

  [[nodiscard]] double temperature() const { return temp_; }
  [[nodiscard]] const ThermalParams& params() const { return params_; }

  // Steady-state temperature under sustained `cpu_watts`.
  [[nodiscard]] double SteadyState(double cpu_watts) const;

  // Advances the model `dt` seconds with constant `cpu_watts` applied, using
  // the closed-form exponential response (exact for piecewise-constant power,
  // so event-driven simulation introduces no integration error).
  void Advance(double dt_seconds, double cpu_watts);

  void Reset() { temp_ = params_.ambient_celsius; }
  void Reset(double temp_celsius) { temp_ = temp_celsius; }

 private:
  ThermalParams params_;
  double temp_;
};

}  // namespace eco::hw
