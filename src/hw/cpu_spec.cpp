#include "hw/cpu_spec.hpp"

#include <algorithm>
#include <cstdlib>

namespace eco::hw {

KiloHertz CpuSpec::MinFrequency() const {
  return available_frequencies.empty() ? 0 : available_frequencies.front();
}

KiloHertz CpuSpec::MaxFrequency() const {
  return available_frequencies.empty() ? 0 : available_frequencies.back();
}

KiloHertz CpuSpec::NearestFrequency(KiloHertz f) const {
  if (available_frequencies.empty()) return 0;
  KiloHertz best = available_frequencies.front();
  auto distance = [f](KiloHertz candidate) {
    return candidate > f ? candidate - f : f - candidate;
  };
  for (const KiloHertz candidate : available_frequencies) {
    if (distance(candidate) < distance(best)) best = candidate;
  }
  return best;
}

bool CpuSpec::SupportsFrequency(KiloHertz f) const {
  return std::find(available_frequencies.begin(), available_frequencies.end(),
                   f) != available_frequencies.end();
}

MachineSpec MachineSpec::Epyc7502P(std::string hostname) {
  MachineSpec spec;
  spec.hostname = std::move(hostname);
  spec.cpu.model_name = "AMD EPYC 7502P 32-Core Processor";
  spec.cpu.cores = 32;
  spec.cpu.threads_per_core = 2;
  spec.cpu.available_frequencies = {kHz(1'500'000), kHz(2'200'000),
                                    kHz(2'500'000)};
  spec.ram_bytes = GiB(256);
  return spec;
}

MachineSpec MachineSpec::XeonGold6230(std::string hostname) {
  MachineSpec spec;
  spec.hostname = std::move(hostname);
  spec.cpu.model_name = "Intel(R) Xeon(R) Gold 6230 CPU @ 2.10GHz";
  spec.cpu.cores = 20;
  spec.cpu.threads_per_core = 2;
  spec.cpu.available_frequencies = {kHz(1'000'000), kHz(1'400'000),
                                    kHz(1'800'000), kHz(2'100'000),
                                    kHz(2'500'000)};
  spec.ram_bytes = GiB(192);
  return spec;
}

MachineSpec MachineSpec::TestNode(std::string hostname) {
  MachineSpec spec;
  spec.hostname = std::move(hostname);
  spec.cpu.model_name = "Test CPU 4-Core";
  spec.cpu.cores = 4;
  spec.cpu.threads_per_core = 2;
  spec.cpu.available_frequencies = {kHz(1'000'000), kHz(2'000'000)};
  spec.ram_bytes = GiB(16);
  return spec;
}

}  // namespace eco::hw
