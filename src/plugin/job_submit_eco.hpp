// job_submit_eco — the Slurm C plugin (§3.1.1, §4.2).
//
// Behaviour, mirroring the paper:
//  - plugin state "user" (default): only jobs whose --comment contains
//    "chronus" are rewritten (§3.3); "active": every job; "deactivated":
//    none.
//  - the system hash comes from /proc/cpuinfo + /proc/meminfo via
//    simple_hash (§4.2.1); the binary hash identifies the executable the
//    script sruns (the paper's constant-path shortcut, §6.1.2, is fixed by
//    hashing the srun target).
//  - Chronus is asked for the energy-efficient configuration and the
//    descriptor's num_tasks / threads_per_core / cpu_freq_min / cpu_freq_max
//    are rewritten (§4.2.2 Listing 4).
//  - any failure leaves the job untouched and returns SLURM_SUCCESS — an eco
//    plugin must never break production submissions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "chronus/gateway.hpp"
#include "slurm/plugin_api.h"

namespace eco::plugin {

// Installs the gateway the plugin calls (nullptr detaches, making the plugin
// inert). Must be set before the registry loads the plugin in tests that
// expect rewriting.
void SetChronusGateway(std::shared_ptr<chronus::ChronusGateway> gateway);

// The ops table to hand to slurm::PluginRegistry::Load.
const job_submit_plugin_ops_t* EcoPluginOps();

// Instrumentation for the submit-latency experiment (E7) and tests.
struct EcoPluginStats {
  std::uint64_t calls = 0;
  std::uint64_t modified = 0;
  std::uint64_t skipped = 0;   // not opted in / deactivated / no gateway
  std::uint64_t errors = 0;    // chronus lookup or parse failures
  std::uint64_t cache_hits = 0;    // decision served from the submit cache
  std::uint64_t cache_misses = 0;  // decision required a gateway round-trip
  std::uint64_t cache_evictions = 0;  // LRU entries dropped at the size cap
  double total_seconds = 0.0;      // wall time inside job_submit
};

EcoPluginStats GetEcoPluginStats();
// Resets the counters only — the decision cache survives so experiments can
// measure warm-cache latency across a stats reset.
void ResetEcoPluginStats();

// The plugin memoizes successful (system_hash, binary_hash, partition) ->
// configuration decisions so repeat submissions skip the gateway round-trip.
// The cache is striped (per-stripe mutex, so concurrent submitters do not
// serialize on one lock) and bounded: each stripe evicts least-recently-used
// entries past its share of the capacity, and evictions are surfaced via
// EcoPluginStats::cache_evictions plus the eco_plugin_cache_evictions_total
// counter and eco_plugin_cache_size gauge in the global metrics registry.
// SetChronusGateway also clears the cache (a new gateway may predict
// differently); these helpers expose it to tests and benchmarks.
void ClearEcoDecisionCache();
std::size_t EcoDecisionCacheSize();
// Total entry cap across all stripes. The effective minimum is one entry
// per stripe; shrinking below the current size evicts immediately.
void SetEcoDecisionCacheCapacity(std::size_t max_entries);
std::size_t EcoDecisionCacheCapacity();

// Extracts the executable path from the script's srun line ("" if none) —
// exposed for tests.
std::string ExtractSrunBinary(const char* script);

}  // namespace eco::plugin
