#include "plugin/job_submit_eco.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "common/telemetry/metrics.hpp"
#include "sysinfo/simple_hash.hpp"

namespace eco::plugin {
namespace {

std::shared_ptr<chronus::ChronusGateway>& Gateway() {
  static std::shared_ptr<chronus::ChronusGateway> gateway;
  return gateway;
}

EcoPluginStats& Stats() {
  static EcoPluginStats stats;
  return stats;
}

// The same counters, published process-wide so sdiag and the exporters see
// them without linking the plugin layer.
struct RegistryStats {
  telemetry::Counter* calls;
  telemetry::Counter* modified;
  telemetry::Counter* skipped;
  telemetry::Counter* errors;
  telemetry::Counter* cache_hits;
  telemetry::Counter* cache_misses;
  telemetry::Counter* cache_evictions;
  telemetry::Gauge* cache_size;  // live entry count, not reset with stats

  static const RegistryStats& Get() {
    static const RegistryStats r = [] {
      auto& reg = telemetry::MetricsRegistry::Global();
      return RegistryStats{
          reg.GetCounter("eco_plugin_calls_total"),
          reg.GetCounter("eco_plugin_modified_total"),
          reg.GetCounter("eco_plugin_skipped_total"),
          reg.GetCounter("eco_plugin_errors_total"),
          reg.GetCounter("eco_plugin_cache_hits_total"),
          reg.GetCounter("eco_plugin_cache_misses_total"),
          reg.GetCounter("eco_plugin_cache_evictions_total"),
          reg.GetGauge("eco_plugin_cache_size"),
      };
    }();
    return r;
  }

  void Reset() const {
    calls->Reset();
    modified->Reset();
    skipped->Reset();
    errors->Reset();
    cache_hits->Reset();
    cache_misses->Reset();
    cache_evictions->Reset();
    // cache_size mirrors the live cache, which a stats reset leaves intact.
  }
};

bool CommentOptsIn(const char* comment) {
  return comment != nullptr &&
         std::string_view(comment).find("chronus") != std::string_view::npos;
}

// A resolved configuration decision, memoized per (system, binary,
// partition). Only successful gateway lookups are cached — failures must
// retry so a recovering Chronus starts serving jobs again.
struct Decision {
  long long cores = 0;
  long long tpc = 0;
  long long freq = 0;
};

// Striped bounded LRU. Each stripe owns a per-stripe mutex, an LRU list
// (front = most recently used) and an index into it, so concurrent
// submitters only serialize when their keys hash to the same stripe.
// The total capacity is split evenly across stripes; a stripe past its
// share evicts from its own tail (strict global LRU would need the single
// lock the striping exists to remove).
constexpr std::size_t kCacheStripeCount = 8;  // power of two
constexpr std::size_t kDefaultCacheCapacity = 65536;

struct CacheStripe {
  std::mutex mutex;
  std::list<std::pair<std::string, Decision>> lru;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, Decision>>::iterator>
      index;
};

std::array<CacheStripe, kCacheStripeCount>& CacheStripes() {
  static auto* stripes = new std::array<CacheStripe, kCacheStripeCount>();
  return *stripes;
}

std::atomic<std::size_t>& CacheCapacity() {
  static std::atomic<std::size_t> capacity{kDefaultCacheCapacity};
  return capacity;
}

// Live total entry count — keeps EcoDecisionCacheSize() and the size gauge
// O(1) instead of an eight-lock sweep.
std::atomic<std::size_t>& CacheEntries() {
  static std::atomic<std::size_t> entries{0};
  return entries;
}

CacheStripe& StripeFor(const std::string& key) {
  return CacheStripes()[std::hash<std::string>{}(key) &
                        (kCacheStripeCount - 1)];
}

std::size_t PerStripeCapacity() {
  return std::max<std::size_t>(
      1, CacheCapacity().load(std::memory_order_relaxed) / kCacheStripeCount);
}

// Evicts stripe-tail entries past `cap`; returns how many were dropped.
// Caller holds the stripe mutex.
std::size_t TrimStripe(CacheStripe& stripe, std::size_t cap) {
  std::size_t evicted = 0;
  while (stripe.index.size() > cap) {
    stripe.index.erase(stripe.lru.back().first);
    stripe.lru.pop_back();
    ++evicted;
  }
  if (evicted > 0) {
    CacheEntries().fetch_sub(evicted, std::memory_order_relaxed);
  }
  return evicted;
}

bool CacheLookup(const std::string& key, Decision* out) {
  CacheStripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.index.find(key);
  if (it == stripe.index.end()) return false;
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
  *out = it->second->second;
  return true;
}

// Inserts (or refreshes) a decision; returns the number of LRU evictions
// the insert forced.
std::size_t CacheInsert(const std::string& key, const Decision& decision) {
  CacheStripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.index.find(key);
  if (it != stripe.index.end()) {
    it->second->second = decision;
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
    return 0;
  }
  stripe.lru.emplace_front(key, decision);
  stripe.index.emplace(key, stripe.lru.begin());
  CacheEntries().fetch_add(1, std::memory_order_relaxed);
  return TrimStripe(stripe, PerStripeCapacity());
}

std::string CacheKey(const std::string& system_hash,
                     const std::string& binary_hash, const char* partition) {
  std::string key = system_hash;
  key += '|';
  key += binary_hash;
  key += '|';
  if (partition != nullptr) key += partition;
  return key;
}

// Listing 4: rewrite the descriptor from a decision.
void ApplyDecision(job_desc_msg_t* job_desc, const Decision& d) {
  if (d.cores > 0) job_desc->num_tasks = static_cast<uint32_t>(d.cores);
  if (d.tpc > 0) job_desc->threads_per_core = static_cast<uint16_t>(d.tpc);
  if (d.freq > 0) {
    job_desc->cpu_freq_min = static_cast<uint32_t>(d.freq);
    job_desc->cpu_freq_max = static_cast<uint32_t>(d.freq);
  }
}

}  // namespace

std::string ExtractSrunBinary(const char* script) {
  if (script == nullptr) return "";
  for (const std::string& raw_line : Split(script, '\n')) {
    const std::string line = Trim(raw_line);
    if (!StartsWith(line, "srun ")) continue;
    const auto tokens = SplitWhitespace(line);
    // The executable is the first non-option token after `srun` (anything
    // later is the application's own arguments). srun's long options take
    // --key=value form, so skipping '-'-prefixed tokens is sufficient.
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (!StartsWith(tokens[i], "-")) return tokens[i];
    }
  }
  return "";
}

void SetChronusGateway(std::shared_ptr<chronus::ChronusGateway> gateway) {
  Gateway() = std::move(gateway);
  // A different gateway may resolve the same key to a different
  // configuration; stale decisions must not outlive it.
  ClearEcoDecisionCache();
}

EcoPluginStats GetEcoPluginStats() { return Stats(); }
void ResetEcoPluginStats() {
  Stats() = EcoPluginStats{};
  RegistryStats::Get().Reset();
}

void ClearEcoDecisionCache() {
  for (CacheStripe& stripe : CacheStripes()) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    CacheEntries().fetch_sub(stripe.index.size(), std::memory_order_relaxed);
    stripe.index.clear();
    stripe.lru.clear();
  }
  RegistryStats::Get().cache_size->Set(0.0);
}

std::size_t EcoDecisionCacheSize() {
  return CacheEntries().load(std::memory_order_relaxed);
}

void SetEcoDecisionCacheCapacity(std::size_t max_entries) {
  CacheCapacity().store(std::max<std::size_t>(1, max_entries),
                        std::memory_order_relaxed);
  // Shrinking below the current size takes effect now, not lazily on the
  // next insert into each stripe.
  const std::size_t per_stripe = PerStripeCapacity();
  std::size_t evicted = 0;
  for (CacheStripe& stripe : CacheStripes()) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    evicted += TrimStripe(stripe, per_stripe);
  }
  if (evicted > 0) {
    Stats().cache_evictions += evicted;
    RegistryStats::Get().cache_evictions->Add(evicted);
  }
  RegistryStats::Get().cache_size->Set(
      static_cast<double>(EcoDecisionCacheSize()));
}

std::size_t EcoDecisionCacheCapacity() {
  return CacheCapacity().load(std::memory_order_relaxed);
}

namespace {

int EcoInit() {
  ECO_INFO << "job_submit_eco: loaded";
  return SLURM_SUCCESS;
}

void EcoFini() { ECO_INFO << "job_submit_eco: unloaded"; }

// The paper's Listing 4 entry point.
int EcoJobSubmit(job_desc_msg_t* job_desc, uint32_t submit_uid,
                 char** err_msg) {
  (void)submit_uid;
  if (err_msg != nullptr) *err_msg = nullptr;
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  auto& stats = Stats();
  const RegistryStats& reg = RegistryStats::Get();
  ++stats.calls;
  reg.calls->Add(1);
  const auto record_time = [&] {
    stats.total_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
  };

  const auto gateway = Gateway();
  if (job_desc == nullptr || gateway == nullptr) {
    ++stats.skipped;
    reg.skipped->Add(1);
    record_time();
    return SLURM_SUCCESS;
  }

  const chronus::PluginState state =
      gateway->state ? gateway->state() : chronus::PluginState::kUser;
  const bool opted_in = CommentOptsIn(job_desc->comment);
  const bool should_run =
      state == chronus::PluginState::kActive ||
      (state == chronus::PluginState::kUser && opted_in);
  if (!should_run) {
    ++stats.skipped;
    reg.skipped->Add(1);
    record_time();
    return SLURM_SUCCESS;
  }

  // Identify the system and the binary (§4.2.1).
  const std::string system_hash = gateway->system_hash();
  const std::string binary = ExtractSrunBinary(job_desc->script);
  const std::string binary_hash =
      sysinfo::HashToString(sysinfo::SimpleHash(binary));

  // Fast path: a previous submission already resolved this
  // (system, binary, partition) — skip the gateway round-trip entirely.
  const std::string key =
      CacheKey(system_hash, binary_hash, job_desc->partition);
  Decision cached;
  if (CacheLookup(key, &cached)) {
    ApplyDecision(job_desc, cached);
    ++stats.cache_hits;
    ++stats.modified;
    reg.cache_hits->Add(1);
    reg.modified->Add(1);
    ECO_INFO << "job_submit_eco: job " << job_desc->job_id
             << " set from cache to " << cached.cores << " tasks @ "
             << cached.freq << " kHz, " << cached.tpc << " threads/core";
    record_time();
    return SLURM_SUCCESS;
  }
  ++stats.cache_misses;
  reg.cache_misses->Add(1);

  // Miss path: the gateway's SlurmConfigService resolves the model for this
  // (system_hash, binary_hash) — unpacking a random-tree model compiles its
  // SoA inference engine once there (eco_ml_inference_compiles_total), and
  // the candidate sweep behind this call runs as one batched predict.
  const auto config_json = gateway->slurm_config(system_hash, binary_hash);
  if (!config_json.ok()) {
    ECO_WARN << "job_submit_eco: chronus lookup failed ("
             << config_json.message() << "); leaving job " << job_desc->job_id
             << " unchanged";
    ++stats.errors;
    reg.errors->Add(1);
    record_time();
    return SLURM_SUCCESS;
  }
  const auto parsed = Json::Parse(*config_json);
  if (!parsed.ok() || !parsed->is_object()) {
    ECO_WARN << "job_submit_eco: bad configuration JSON; leaving job unchanged";
    ++stats.errors;
    reg.errors->Add(1);
    record_time();
    return SLURM_SUCCESS;
  }

  Decision decision;
  decision.cores = parsed->at("cores").as_int(0);
  decision.tpc = parsed->at("threads_per_core").as_int(0);
  decision.freq = parsed->at("frequency").as_int(0);
  ApplyDecision(job_desc, decision);
  const std::size_t evicted = CacheInsert(key, decision);
  if (evicted > 0) {
    stats.cache_evictions += evicted;
    reg.cache_evictions->Add(evicted);
  }
  reg.cache_size->Set(static_cast<double>(EcoDecisionCacheSize()));
  ++stats.modified;
  reg.modified->Add(1);
  ECO_INFO << "job_submit_eco: job " << job_desc->job_id << " set to "
           << decision.cores << " tasks @ " << decision.freq << " kHz, "
           << decision.tpc << " threads/core";
  record_time();
  return SLURM_SUCCESS;
}

int EcoJobModify(job_desc_msg_t* job_desc, uint32_t submit_uid,
                 char** err_msg) {
  // Modification re-runs the same logic (Slurm calls job_modify on updates).
  return EcoJobSubmit(job_desc, submit_uid, err_msg);
}

const job_submit_plugin_ops_t kEcoOps = {
    "Eco energy-efficient job submit plugin",
    "job_submit/eco",
    /*plugin_version=*/220509,  // tracks the paper's Slurm 22.05.9
    EcoInit,
    EcoFini,
    EcoJobSubmit,
    EcoJobModify,
};

}  // namespace

const job_submit_plugin_ops_t* EcoPluginOps() { return &kEcoOps; }

}  // namespace eco::plugin
