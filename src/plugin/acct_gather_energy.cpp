#include "plugin/acct_gather_energy.hpp"

#include <cmath>

#include "common/log.hpp"

namespace eco::plugin {
namespace {

// ------------------------------------------------------------------ ipmi

struct IpmiEnergyState {
  ipmi::BmcSimulator* bmc = nullptr;
  const EventQueue* clock = nullptr;
  double consumed_joules = 0.0;
  double last_poll = 0.0;
  double last_watts = 0.0;
  bool primed = false;
};

IpmiEnergyState& IpmiState() {
  static IpmiEnergyState state;
  return state;
}

int IpmiEnergyInit() {
  IpmiState().consumed_joules = 0.0;
  IpmiState().primed = false;
  return IpmiState().bmc != nullptr && IpmiState().clock != nullptr
             ? SLURM_SUCCESS
             : SLURM_ERROR;
}

void IpmiEnergyFini() {}

int IpmiEnergyRead(acct_gather_energy_t* energy) {
  auto& state = IpmiState();
  if (energy == nullptr || state.bmc == nullptr || state.clock == nullptr) {
    return SLURM_ERROR;
  }
  const double now = state.clock->now();
  const double watts = state.bmc->ReadTotalPower().value;
  if (state.primed) {
    // Trapezoidal integration between polls — like the real plugin, the
    // quality of the energy figure depends on the polling cadence.
    state.consumed_joules +=
        0.5 * (watts + state.last_watts) * (now - state.last_poll);
  }
  state.primed = true;
  state.last_poll = now;
  state.last_watts = watts;

  energy->consumed_joules =
      static_cast<uint64_t>(std::llround(state.consumed_joules));
  energy->current_watts = static_cast<uint32_t>(std::lround(watts));
  energy->poll_time = static_cast<uint64_t>(now);
  return SLURM_SUCCESS;
}

const acct_gather_energy_plugin_ops_t kIpmiEnergyOps = {
    "AcctGatherEnergy IPMI plugin",
    "acct_gather_energy/ipmi",
    220509,
    IpmiEnergyInit,
    IpmiEnergyFini,
    IpmiEnergyRead,
};

// ------------------------------------------------------------------ rapl

struct RaplEnergyState {
  const hw::RaplCounter* counter = nullptr;
  const EventQueue* clock = nullptr;
  double consumed_joules = 0.0;
  std::uint32_t last_msr = 0;
  double last_poll = 0.0;
  bool primed = false;
};

RaplEnergyState& RaplState() {
  static RaplEnergyState state;
  return state;
}

int RaplEnergyInit() {
  RaplState().consumed_joules = 0.0;
  RaplState().primed = false;
  return RaplState().counter != nullptr && RaplState().clock != nullptr
             ? SLURM_SUCCESS
             : SLURM_ERROR;
}

void RaplEnergyFini() {}

int RaplEnergyRead(acct_gather_energy_t* energy) {
  auto& state = RaplState();
  if (energy == nullptr || state.counter == nullptr || state.clock == nullptr) {
    return SLURM_ERROR;
  }
  const double now = state.clock->now();
  const std::uint32_t msr = state.counter->ReadMsr();
  double watts = 0.0;
  if (state.primed) {
    const double joules = state.counter->DeltaJoules(state.last_msr, msr);
    state.consumed_joules += joules;
    const double dt = now - state.last_poll;
    if (dt > 0.0) watts = joules / dt;
  }
  state.primed = true;
  state.last_msr = msr;
  state.last_poll = now;

  energy->consumed_joules =
      static_cast<uint64_t>(std::llround(state.consumed_joules));
  energy->current_watts = static_cast<uint32_t>(std::lround(watts));
  energy->poll_time = static_cast<uint64_t>(now);
  return SLURM_SUCCESS;
}

const acct_gather_energy_plugin_ops_t kRaplEnergyOps = {
    "AcctGatherEnergy RAPL plugin",
    "acct_gather_energy/rapl",
    220509,
    RaplEnergyInit,
    RaplEnergyFini,
    RaplEnergyRead,
};

}  // namespace

void SetIpmiEnergySource(ipmi::BmcSimulator* bmc, const EventQueue* clock) {
  IpmiState().bmc = bmc;
  IpmiState().clock = clock;
}

const acct_gather_energy_plugin_ops_t* IpmiEnergyOps() {
  return &kIpmiEnergyOps;
}

void SetRaplEnergySource(const hw::RaplCounter* counter,
                         const EventQueue* clock) {
  RaplState().counter = counter;
  RaplState().clock = clock;
}

const acct_gather_energy_plugin_ops_t* RaplEnergyOps() {
  return &kRaplEnergyOps;
}

}  // namespace eco::plugin
