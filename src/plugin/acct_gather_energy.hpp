// acct_gather_energy plugin implementations:
//
//  - acct_gather_energy/ipmi: polls a BMC's Total_Power and integrates it
//    over wall (simulation) time — whole-node energy, what the paper's
//    measurement setup corresponds to.
//  - acct_gather_energy/rapl: reads the package RAPL MSR and unwraps the
//    32-bit counter — CPU-only energy, cheaper to read, the usual
//    alternative on clusters without BMC access.
//
// Both are C-ABI ops tables loadable into slurm::EnergyGatherHost. Sources
// are attached process-globally, mirroring how the real plugins find their
// device files.
#pragma once

#include "common/sim_clock.hpp"
#include "hw/rapl.hpp"
#include "ipmi/bmc.hpp"
#include "slurm/plugin_api.h"

namespace eco::plugin {

// --- ipmi flavour. `clock` supplies timestamps and integration deltas.
void SetIpmiEnergySource(ipmi::BmcSimulator* bmc, const EventQueue* clock);
const acct_gather_energy_plugin_ops_t* IpmiEnergyOps();

// --- rapl flavour.
void SetRaplEnergySource(const hw::RaplCounter* counter,
                         const EventQueue* clock);
const acct_gather_energy_plugin_ops_t* RaplEnergyOps();

}  // namespace eco::plugin
