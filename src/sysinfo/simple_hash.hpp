// The paper's hash function (Listing 3), used by job_submit_eco to identify
// the system (hash of /proc/cpuinfo + /proc/meminfo contents) and the
// application binary. It is the djb2 multiply-by-33 scheme with the paper's
// 53871 seed.
#pragma once

#include <string>
#include <string_view>

namespace eco::sysinfo {

unsigned long SimpleHash(std::string_view str);

// Hex rendering used when hashes travel through JSON / CLI arguments.
std::string HashToString(unsigned long hash);

}  // namespace eco::sysinfo
