// lscpu-equivalent system information provider.
//
// Chronus's SystemInfo integration interface is implemented by `lscpu` in the
// paper (§3.2). This provider parses the same facts out of the virtual
// procfs, producing the SystemInfo tuple the Chronus log shows:
// "SystemInfo(cpu_name='AMD EPYC 7502P 32-Core Processor', cores=32,
//  threads_per_core=2, frequencies=[1500000.0, 2200000.0, 2500000.0])".
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "sysinfo/procfs.hpp"

namespace eco::sysinfo {

struct LscpuInfo {
  std::string cpu_name;
  int cores = 0;
  int threads_per_core = 0;
  std::vector<KiloHertz> frequencies;
  std::uint64_t ram_bytes = 0;

  [[nodiscard]] std::string ToString() const;
};

// Gathers LscpuInfo by *parsing the rendered procfs text*, not by peeking at
// the MachineSpec — the same information path a real lscpu uses.
LscpuInfo ReadLscpu(const VirtualProcFs& procfs);

}  // namespace eco::sysinfo
