#include "sysinfo/procfs.hpp"

#include <sstream>

#include "common/strings.hpp"
#include "sysinfo/simple_hash.hpp"

namespace eco::sysinfo {

std::string VirtualProcFs::CpuInfo() const {
  const auto& cpu = spec_.cpu;
  std::ostringstream out;
  const int logical = cpu.cores * cpu.threads_per_core;
  const double mhz = static_cast<double>(cpu.MaxFrequency()) / 1000.0;
  for (int i = 0; i < logical; ++i) {
    out << "processor\t: " << i << "\n";
    out << "vendor_id\t: AuthenticAMD\n";
    out << "model name\t: " << cpu.model_name << "\n";
    out << "cpu MHz\t\t: " << FormatDouble(mhz, 3) << "\n";
    out << "physical id\t: 0\n";
    out << "siblings\t: " << logical << "\n";
    out << "core id\t\t: " << (i % cpu.cores) << "\n";
    out << "cpu cores\t: " << cpu.cores << "\n";
    out << "\n";
  }
  return out.str();
}

std::string VirtualProcFs::MemInfo() const {
  std::ostringstream out;
  const std::uint64_t total_kb = spec_.ram_bytes / 1024;
  out << "MemTotal:       " << total_kb << " kB\n";
  out << "MemFree:        " << total_kb * 9 / 10 << " kB\n";
  out << "MemAvailable:   " << total_kb * 9 / 10 << " kB\n";
  return out.str();
}

std::string VirtualProcFs::ScalingAvailableFrequencies() const {
  std::ostringstream out;
  // sysfs lists kHz values space-separated, highest first.
  const auto& freqs = spec_.cpu.available_frequencies;
  for (auto it = freqs.rbegin(); it != freqs.rend(); ++it) {
    if (it != freqs.rbegin()) out << ' ';
    out << *it;
  }
  out << '\n';
  return out.str();
}

Result<std::string> VirtualProcFs::ReadFile(const std::string& path) const {
  if (path == "/proc/cpuinfo") return CpuInfo();
  if (path == "/proc/meminfo") return MemInfo();
  if (StartsWith(path, "/sys/devices/system/cpu/") &&
      EndsWith(path, "/cpufreq/scaling_available_frequencies")) {
    return ScalingAvailableFrequencies();
  }
  return Result<std::string>::Error("procfs: no such file: " + path);
}

unsigned long VirtualProcFs::SystemHash() const {
  return SimpleHash(CpuInfo() + MemInfo());
}

}  // namespace eco::sysinfo
