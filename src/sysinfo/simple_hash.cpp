#include "sysinfo/simple_hash.hpp"

#include <cstdio>

namespace eco::sysinfo {

unsigned long SimpleHash(std::string_view str) {
  unsigned long hash = 53871;
  for (const char c : str) {
    hash = ((hash << 5) + hash) + static_cast<unsigned char>(c);  // hash*33 + c
  }
  return hash;
}

std::string HashToString(unsigned long hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lx", hash);
  return buf;
}

}  // namespace eco::sysinfo
