// Virtual procfs / sysfs for the simulated node.
//
// Chronus on real hardware reads system information from Linux files
// (/proc/cpuinfo, /proc/meminfo, /sys/devices/system/cpu/.../cpufreq/
// scaling_available_frequencies, §3.4.2). The simulator renders the same
// files from a MachineSpec so the identification code path — read files,
// concatenate, simple_hash — is byte-for-byte the flow from §4.2.1.
#pragma once

#include <string>

#include "common/error.hpp"
#include "hw/cpu_spec.hpp"

namespace eco::sysinfo {

class VirtualProcFs {
 public:
  explicit VirtualProcFs(hw::MachineSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const hw::MachineSpec& spec() const { return spec_; }

  // Supported paths: /proc/cpuinfo, /proc/meminfo,
  // /sys/devices/system/cpu/cpu<N>/cpufreq/scaling_available_frequencies.
  [[nodiscard]] Result<std::string> ReadFile(const std::string& path) const;

  [[nodiscard]] std::string CpuInfo() const;
  [[nodiscard]] std::string MemInfo() const;
  [[nodiscard]] std::string ScalingAvailableFrequencies() const;

  // System identity hash per the paper: cpuinfo + meminfo concatenated and
  // fed through simple_hash.
  [[nodiscard]] unsigned long SystemHash() const;

 private:
  hw::MachineSpec spec_;
};

}  // namespace eco::sysinfo
