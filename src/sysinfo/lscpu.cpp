#include "sysinfo/lscpu.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"

namespace eco::sysinfo {

std::string LscpuInfo::ToString() const {
  std::ostringstream out;
  out << "SystemInfo(cpu_name='" << cpu_name << "', cores=" << cores
      << ", threads_per_core=" << threads_per_core << ", frequencies=[";
  for (std::size_t i = 0; i < frequencies.size(); ++i) {
    if (i != 0) out << ", ";
    out << FormatDouble(static_cast<double>(frequencies[i]), 1);
  }
  out << "])";
  return out.str();
}

LscpuInfo ReadLscpu(const VirtualProcFs& procfs) {
  LscpuInfo info;

  // Parse /proc/cpuinfo: model name, physical cores, siblings.
  int logical = 0;
  for (const auto& line : Split(procfs.CpuInfo(), '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = Trim(line.substr(0, colon));
    const std::string value = Trim(line.substr(colon + 1));
    if (key == "processor") {
      ++logical;
    } else if (key == "model name" && info.cpu_name.empty()) {
      info.cpu_name = value;
    } else if (key == "cpu cores" && info.cores == 0) {
      long long cores = 0;
      if (ParseInt64(value, cores)) info.cores = static_cast<int>(cores);
    }
  }
  if (info.cores > 0) info.threads_per_core = std::max(1, logical / info.cores);

  // Parse scaling_available_frequencies (kHz, descending in sysfs).
  for (const auto& token :
       SplitWhitespace(procfs.ScalingAvailableFrequencies())) {
    long long khz = 0;
    if (ParseInt64(token, khz) && khz > 0) {
      info.frequencies.push_back(static_cast<KiloHertz>(khz));
    }
  }
  std::sort(info.frequencies.begin(), info.frequencies.end());

  // Parse MemTotal from /proc/meminfo.
  for (const auto& line : Split(procfs.MemInfo(), '\n')) {
    if (!StartsWith(line, "MemTotal:")) continue;
    const auto tokens = SplitWhitespace(line);
    long long kb = 0;
    if (tokens.size() >= 2 && ParseInt64(tokens[1], kb)) {
      info.ram_bytes = static_cast<std::uint64_t>(kb) * 1024;
    }
  }
  return info;
}

}  // namespace eco::sysinfo
