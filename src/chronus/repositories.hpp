// The two Repository implementations from the paper's Figure 5:
//
//  - CsvRepository: three CSV files (systems.csv / benchmarks.csv /
//    models.csv) in a directory; loads eagerly, rewrites on save.
//  - MiniDbRepository: one MiniDb file (the SQLite stand-in), flushed after
//    each write.
//
// Both speak through the shared row codecs, so a database written by one can
// be read by the other's storage layer (covered by tests).
#pragma once

#include <string>
#include <vector>

#include "chronus/interfaces.hpp"
#include "chronus/minidb.hpp"

namespace eco::chronus {

class MiniDbRepository : public RepositoryInterface {
 public:
  // Empty path = in-memory (handy for tests).
  explicit MiniDbRepository(const std::string& path = "");

  Result<int> SaveSystem(const SystemRecord& system) override;
  Result<SystemRecord> GetSystem(int id) override;
  Result<SystemRecord> FindSystemByHash(const std::string& hash) override;
  Result<std::vector<SystemRecord>> ListSystems() override;

  Result<int> SaveBenchmark(const BenchmarkRecord& benchmark) override;
  Result<std::vector<BenchmarkRecord>> ListBenchmarks(int system_id) override;

  Result<int> SaveModelMeta(const ModelMeta& meta) override;
  Result<ModelMeta> GetModelMeta(int id) override;
  Result<std::vector<ModelMeta>> ListModels() override;

 private:
  MiniDb db_;
};

class CsvRepository : public RepositoryInterface {
 public:
  // `directory` must exist; files are created on first save.
  explicit CsvRepository(std::string directory);

  Result<int> SaveSystem(const SystemRecord& system) override;
  Result<SystemRecord> GetSystem(int id) override;
  Result<SystemRecord> FindSystemByHash(const std::string& hash) override;
  Result<std::vector<SystemRecord>> ListSystems() override;

  Result<int> SaveBenchmark(const BenchmarkRecord& benchmark) override;
  Result<std::vector<BenchmarkRecord>> ListBenchmarks(int system_id) override;

  Result<int> SaveModelMeta(const ModelMeta& meta) override;
  Result<ModelMeta> GetModelMeta(int id) override;
  Result<std::vector<ModelMeta>> ListModels() override;

 private:
  Result<std::vector<DbRow>> LoadTable(const std::string& file,
                                       const std::vector<std::string>& columns);
  Status StoreTable(const std::string& file,
                    const std::vector<std::string>& columns,
                    const std::vector<DbRow>& rows);
  static int NextId(const std::vector<DbRow>& rows);

  std::string dir_;
};

}  // namespace eco::chronus
