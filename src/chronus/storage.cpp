#include "chronus/storage.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace eco::chronus {
namespace fs = std::filesystem;

Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::Error("storage: mkdir failed: " + path + ": " +
                               ec.message());
  return Status::Ok();
}

Status WriteWholeFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return Status::Error("storage: cannot open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out.good()) return Status::Error("storage: write failed: " + path);
  return Status::Ok();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Result<std::string>::Error("storage: cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

EtcStorage::EtcStorage(std::string root) : root_(std::move(root)) {
  if (!root_.empty() && root_.back() == '/') root_.pop_back();
  EnsureDirectory(root_);
}

std::string EtcStorage::ResolvePath(const std::string& name) const {
  if (!name.empty() && name.front() == '/') return name;  // already absolute
  return root_ + "/" + name;
}

Result<Json> EtcStorage::LoadSettings() {
  auto text = ReadWholeFile(ResolvePath("settings.json"));
  if (!text.ok()) return Json(JsonObject{});  // fresh install: empty settings
  return Json::Parse(*text);
}

Status EtcStorage::SaveSettings(const Json& settings) {
  return WriteWholeFile(ResolvePath("settings.json"), settings.Dump(2) + "\n");
}

Status EtcStorage::WriteFile(const std::string& name, const std::string& data) {
  return WriteWholeFile(ResolvePath(name), data);
}

Result<std::string> EtcStorage::ReadFile(const std::string& name) {
  return ReadWholeFile(ResolvePath(name));
}

LocalBlobStorage::LocalBlobStorage(std::string root) : root_(std::move(root)) {
  if (!root_.empty() && root_.back() == '/') root_.pop_back();
  EnsureDirectory(root_);
}

Result<std::string> LocalBlobStorage::Save(const std::string& name,
                                           const std::string& content) {
  const std::string path = root_ + "/" + name;
  const Status written = WriteWholeFile(path, content);
  if (!written.ok()) return Result<std::string>::Error(written.message());
  return path;
}

Result<std::string> LocalBlobStorage::Load(const std::string& path) {
  // Paths from Save() are absolute-ish already; bare names resolve under root.
  if (path.find('/') == std::string::npos) {
    return ReadWholeFile(root_ + "/" + path);
  }
  return ReadWholeFile(path);
}

}  // namespace eco::chronus
