#include "chronus/repositories.hpp"

#include <algorithm>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "chronus/repo_codec.hpp"

namespace eco::chronus {
namespace {

constexpr const char* kSystems = "systems";
constexpr const char* kBenchmarks = "benchmarks";
constexpr const char* kModels = "models";

template <typename T, typename Decoder>
Result<std::vector<T>> DecodeRows(const std::vector<DbRow>& rows,
                                  Decoder decode) {
  std::vector<T> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    auto decoded = decode(row);
    if (!decoded.ok()) return Result<std::vector<T>>::Error(decoded.message());
    out.push_back(std::move(decoded.value()));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- MiniDb

MiniDbRepository::MiniDbRepository(const std::string& path) : db_(path) {
  db_.Open();  // best-effort; a corrupt file surfaces on first query instead
}

Result<int> MiniDbRepository::SaveSystem(const SystemRecord& system) {
  // Deduplicate on system hash — re-registering the same machine returns the
  // existing id (the CLI flow in Figure 8 depends on this).
  if (!system.system_hash.empty()) {
    const auto existing = db_.Where(kSystems, "system_hash", system.system_hash);
    if (!existing.empty()) {
      auto decoded = RowToSystem(existing.front());
      if (decoded.ok()) return decoded->id;
    }
  }
  auto id = db_.Insert(kSystems, SystemToRow(system));
  if (id.ok()) db_.Flush();
  return id;
}

Result<SystemRecord> MiniDbRepository::GetSystem(int id) {
  auto row = db_.SelectById(kSystems, id);
  if (!row.ok()) return Result<SystemRecord>::Error(row.message());
  return RowToSystem(*row);
}

Result<SystemRecord> MiniDbRepository::FindSystemByHash(const std::string& hash) {
  const auto rows = db_.Where(kSystems, "system_hash", hash);
  if (rows.empty()) {
    return Result<SystemRecord>::Error("repository: no system with hash " + hash);
  }
  return RowToSystem(rows.front());
}

Result<std::vector<SystemRecord>> MiniDbRepository::ListSystems() {
  auto rows = db_.SelectAll(kSystems);
  if (!rows.ok()) return Result<std::vector<SystemRecord>>::Error(rows.message());
  return DecodeRows<SystemRecord>(*rows, RowToSystem);
}

Result<int> MiniDbRepository::SaveBenchmark(const BenchmarkRecord& benchmark) {
  auto id = db_.Insert(kBenchmarks, BenchmarkToRow(benchmark));
  if (id.ok()) db_.Flush();
  return id;
}

Result<std::vector<BenchmarkRecord>> MiniDbRepository::ListBenchmarks(
    int system_id) {
  const auto rows = db_.Where(kBenchmarks, "system_id", std::to_string(system_id));
  return DecodeRows<BenchmarkRecord>(rows, RowToBenchmark);
}

Result<int> MiniDbRepository::SaveModelMeta(const ModelMeta& meta) {
  auto id = db_.Insert(kModels, ModelMetaToRow(meta));
  if (id.ok()) db_.Flush();
  return id;
}

Result<ModelMeta> MiniDbRepository::GetModelMeta(int id) {
  auto row = db_.SelectById(kModels, id);
  if (!row.ok()) return Result<ModelMeta>::Error(row.message());
  return RowToModelMeta(*row);
}

Result<std::vector<ModelMeta>> MiniDbRepository::ListModels() {
  auto rows = db_.SelectAll(kModels);
  if (!rows.ok()) return Result<std::vector<ModelMeta>>::Error(rows.message());
  return DecodeRows<ModelMeta>(*rows, RowToModelMeta);
}

// ------------------------------------------------------------------- CSV

CsvRepository::CsvRepository(std::string directory) : dir_(std::move(directory)) {
  if (!dir_.empty() && dir_.back() != '/') dir_ += '/';
}

Result<std::vector<DbRow>> CsvRepository::LoadTable(
    const std::string& file, const std::vector<std::string>& columns) {
  auto parsed = CsvReadFile(dir_ + file);
  if (!parsed.ok()) return std::vector<DbRow>{};  // missing file = empty table
  std::vector<DbRow> rows;
  const auto& raw = *parsed;
  for (std::size_t i = 1; i < raw.size(); ++i) {  // row 0 is the header
    DbRow row;
    for (std::size_t c = 0; c < columns.size() && c < raw[i].size(); ++c) {
      row[columns[c]] = raw[i][c];
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Status CsvRepository::StoreTable(const std::string& file,
                                 const std::vector<std::string>& columns,
                                 const std::vector<DbRow>& rows) {
  std::vector<CsvRow> out;
  out.push_back(CsvRow(columns.begin(), columns.end()));
  for (const auto& row : rows) {
    CsvRow cells;
    for (const auto& col : columns) {
      const auto it = row.find(col);
      cells.push_back(it == row.end() ? "" : it->second);
    }
    out.push_back(std::move(cells));
  }
  return CsvWriteFile(dir_ + file, out);
}

int CsvRepository::NextId(const std::vector<DbRow>& rows) {
  int next = 1;
  for (const auto& row : rows) {
    long long id = 0;
    const auto it = row.find("id");
    if (it != row.end() && ParseInt64(it->second, id)) {
      next = std::max(next, static_cast<int>(id) + 1);
    }
  }
  return next;
}

Result<int> CsvRepository::SaveSystem(const SystemRecord& system) {
  auto rows = LoadTable("systems.csv", SystemColumns());
  if (!rows.ok()) return Result<int>::Error(rows.message());
  if (!system.system_hash.empty()) {
    for (const auto& row : *rows) {
      const auto it = row.find("system_hash");
      if (it != row.end() && it->second == system.system_hash) {
        auto decoded = RowToSystem(row);
        if (decoded.ok()) return decoded->id;
      }
    }
  }
  const int id = NextId(*rows);
  SystemRecord with_id = system;
  with_id.id = id;
  rows->push_back(SystemToRow(with_id));
  const Status stored = StoreTable("systems.csv", SystemColumns(), *rows);
  if (!stored.ok()) return Result<int>::Error(stored.message());
  return id;
}

Result<SystemRecord> CsvRepository::GetSystem(int id) {
  auto systems = ListSystems();
  if (!systems.ok()) return Result<SystemRecord>::Error(systems.message());
  for (const auto& s : *systems) {
    if (s.id == id) return s;
  }
  return Result<SystemRecord>::Error("repository: no system id " +
                                     std::to_string(id));
}

Result<SystemRecord> CsvRepository::FindSystemByHash(const std::string& hash) {
  auto systems = ListSystems();
  if (!systems.ok()) return Result<SystemRecord>::Error(systems.message());
  for (const auto& s : *systems) {
    if (s.system_hash == hash) return s;
  }
  return Result<SystemRecord>::Error("repository: no system with hash " + hash);
}

Result<std::vector<SystemRecord>> CsvRepository::ListSystems() {
  auto rows = LoadTable("systems.csv", SystemColumns());
  if (!rows.ok()) return Result<std::vector<SystemRecord>>::Error(rows.message());
  return DecodeRows<SystemRecord>(*rows, RowToSystem);
}

Result<int> CsvRepository::SaveBenchmark(const BenchmarkRecord& benchmark) {
  auto rows = LoadTable("benchmarks.csv", BenchmarkColumns());
  if (!rows.ok()) return Result<int>::Error(rows.message());
  const int id = NextId(*rows);
  BenchmarkRecord with_id = benchmark;
  with_id.id = id;
  rows->push_back(BenchmarkToRow(with_id));
  const Status stored = StoreTable("benchmarks.csv", BenchmarkColumns(), *rows);
  if (!stored.ok()) return Result<int>::Error(stored.message());
  return id;
}

Result<std::vector<BenchmarkRecord>> CsvRepository::ListBenchmarks(
    int system_id) {
  auto rows = LoadTable("benchmarks.csv", BenchmarkColumns());
  if (!rows.ok()) {
    return Result<std::vector<BenchmarkRecord>>::Error(rows.message());
  }
  auto all = DecodeRows<BenchmarkRecord>(*rows, RowToBenchmark);
  if (!all.ok()) return all;
  std::vector<BenchmarkRecord> filtered;
  for (auto& b : *all) {
    if (b.system_id == system_id) filtered.push_back(std::move(b));
  }
  return filtered;
}

Result<int> CsvRepository::SaveModelMeta(const ModelMeta& meta) {
  auto rows = LoadTable("models.csv", ModelColumns());
  if (!rows.ok()) return Result<int>::Error(rows.message());
  const int id = NextId(*rows);
  ModelMeta with_id = meta;
  with_id.id = id;
  rows->push_back(ModelMetaToRow(with_id));
  const Status stored = StoreTable("models.csv", ModelColumns(), *rows);
  if (!stored.ok()) return Result<int>::Error(stored.message());
  return id;
}

Result<ModelMeta> CsvRepository::GetModelMeta(int id) {
  auto models = ListModels();
  if (!models.ok()) return Result<ModelMeta>::Error(models.message());
  for (const auto& m : *models) {
    if (m.id == id) return m;
  }
  return Result<ModelMeta>::Error("repository: no model id " +
                                  std::to_string(id));
}

Result<std::vector<ModelMeta>> CsvRepository::ListModels() {
  auto rows = LoadTable("models.csv", ModelColumns());
  if (!rows.ok()) return Result<std::vector<ModelMeta>>::Error(rows.message());
  return DecodeRows<ModelMeta>(*rows, RowToModelMeta);
}

}  // namespace eco::chronus
