#include "chronus/report.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"

namespace eco::chronus {

Result<std::string> GenerateSystemReport(RepositoryInterface& repository,
                                         int system_id) {
  auto system = repository.GetSystem(system_id);
  if (!system.ok()) return Result<std::string>::Error(system.message());
  auto benchmarks = repository.ListBenchmarks(system_id);
  if (!benchmarks.ok()) return Result<std::string>::Error(benchmarks.message());
  auto models = repository.ListModels();
  if (!models.ok()) return Result<std::string>::Error(models.message());

  std::ostringstream out;
  out << "# Energy report: " << system->cpu_name << "\n\n";
  out << "- system id: " << system->id << " (hash `" << system->system_hash
      << "`)\n";
  out << "- " << system->cores << " cores x " << system->threads_per_core
      << " threads/core, " << FormatDouble(BytesToGiB(
             static_cast<double>(system->ram_bytes)), 0) << " GiB RAM\n";
  std::vector<std::string> freqs;
  for (const KiloHertz f : system->frequencies) {
    freqs.push_back(FormatDouble(KiloHertzToGHz(f), 1) + " GHz");
  }
  out << "- frequencies: " << Join(freqs, ", ") << "\n";
  out << "- benchmarks recorded: " << benchmarks->size() << "\n\n";

  if (benchmarks->empty()) {
    out << "_No benchmarks yet — run `chronus benchmark`._\n";
    return out.str();
  }

  std::vector<BenchmarkRecord> sorted = *benchmarks;
  std::sort(sorted.begin(), sorted.end(),
            [](const BenchmarkRecord& a, const BenchmarkRecord& b) {
              return a.GflopsPerWatt() > b.GflopsPerWatt();
            });

  // Baseline: the measured configuration closest to "all cores at max
  // frequency" (what Slurm runs without the plugin).
  const KiloHertz max_freq = system->frequencies.empty()
                                 ? 0
                                 : system->frequencies.back();
  const BenchmarkRecord* baseline = nullptr;
  for (const auto& b : sorted) {
    if (b.config.frequency == max_freq &&
        b.config.cores == system->cores && b.config.threads_per_core == 1) {
      baseline = &b;
    }
  }

  out << "## Configurations by GFLOPS/W\n\n";
  out << "| rank | cores | GHz | threads/core | GFLOPS | avg W | GFLOPS/W |\n";
  out << "|---|---|---|---|---|---|---|\n";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const auto& b = sorted[i];
    out << "| " << i + 1 << " | " << b.config.cores << " | "
        << FormatDouble(KiloHertzToGHz(b.config.frequency), 1) << " | "
        << b.config.threads_per_core << " | " << FormatDouble(b.gflops, 3)
        << " | " << FormatDouble(b.avg_system_watts, 1) << " | "
        << FormatDouble(b.GflopsPerWatt(), 5) << " |"
        << (baseline == &b ? "  <- standard config" : "") << "\n";
  }

  const auto& best = sorted.front();
  out << "\n## Headline\n\n";
  out << "- best configuration: **" << best.config.ToString() << "** at "
      << FormatDouble(best.GflopsPerWatt(), 5) << " GFLOPS/W\n";
  if (baseline != nullptr && baseline != &best &&
      baseline->GflopsPerWatt() > 0.0) {
    const double gain = best.GflopsPerWatt() / baseline->GflopsPerWatt() - 1.0;
    const double perf = best.gflops / baseline->gflops;
    out << "- vs the standard configuration ("
        << baseline->config.ToString() << "): **"
        << FormatDouble(gain * 100.0, 1) << " %** better GFLOPS/W at "
        << FormatDouble(perf * 100.0, 1) << " % of the performance\n";
  }

  out << "\n## Models\n\n";
  bool any = false;
  for (const auto& m : *models) {
    if (m.system_id != system_id) continue;
    any = true;
    out << "- model " << m.id << ": `" << m.type << "` trained for `"
        << m.application << "` (blob: " << m.blob_path << ")\n";
  }
  if (!any) out << "_No models yet — run `chronus init-model`._\n";
  return out.str();
}

}  // namespace eco::chronus
