// Chronus integration interfaces (§3.2, Figure 5).
//
// Each interface is owned by the application layer; implementations live in
// the outer System Integrations ring and are injected at the entry point
// (Dependency Inversion, §4.1 Listing 1). The seven interfaces mirror the
// paper's Figure 5: Repository, Optimizer, Application Runner, Local
// Storage, System Service, System Info, File Repository.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "chronus/domain.hpp"

namespace eco::chronus {

// ----- Repository: metadata persistence (CSV file / MiniDb implementations).
class RepositoryInterface {
 public:
  virtual ~RepositoryInterface() = default;

  virtual Result<int> SaveSystem(const SystemRecord& system) = 0;
  virtual Result<SystemRecord> GetSystem(int id) = 0;
  virtual Result<SystemRecord> FindSystemByHash(const std::string& hash) = 0;
  virtual Result<std::vector<SystemRecord>> ListSystems() = 0;

  virtual Result<int> SaveBenchmark(const BenchmarkRecord& benchmark) = 0;
  virtual Result<std::vector<BenchmarkRecord>> ListBenchmarks(int system_id) = 0;

  virtual Result<int> SaveModelMeta(const ModelMeta& meta) = 0;
  virtual Result<ModelMeta> GetModelMeta(int id) = 0;
  virtual Result<std::vector<ModelMeta>> ListModels() = 0;
};

// ----- Optimizer: the energy-efficiency prediction model.
class OptimizerInterface {
 public:
  virtual ~OptimizerInterface() = default;

  // Stable type string ("brute-force", "linear-regression", "random-tree")
  // used by the ModelFactory to round-trip models (§4.1 Listing 2).
  [[nodiscard]] virtual std::string type() const = 0;

  virtual Status Train(const std::vector<BenchmarkRecord>& benchmarks) = 0;
  // Predicted GFLOPS/W for a configuration.
  virtual Result<double> Predict(const Configuration& config) const = 0;
  // Scores every candidate in one call: out[i] is candidate i's prediction,
  // scored[i] whether it could be scored at all (brute force cannot score an
  // unmeasured configuration). Per-candidate results match Predict exactly;
  // this default just loops it, while the learned optimizers override with a
  // batched engine (one feature matrix, one pass) whose output is bitwise
  // identical to the serial loop (ml/forest_inference.hpp).
  virtual Status PredictBatch(const std::vector<Configuration>& candidates,
                              std::vector<double>* out,
                              std::vector<bool>* scored) const {
    out->assign(candidates.size(), 0.0);
    scored->assign(candidates.size(), false);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Result<double> value = Predict(candidates[i]);
      if (!value.ok()) continue;
      (*out)[i] = *value;
      (*scored)[i] = true;
    }
    return Status::Ok();
  }
  // argmax of Predict over the candidates.
  virtual Result<Configuration> BestConfiguration(
      const std::vector<Configuration>& candidates) const = 0;

  [[nodiscard]] virtual Json Serialize() const = 0;
  virtual Status Deserialize(const Json& json) = 0;
};

// ----- Application Runner: executes one benchmark run at a configuration.
struct RunResult {
  double gflops = 0.0;
  double duration_s = 0.0;
  double system_kilojoules = 0.0;
  double cpu_kilojoules = 0.0;
  double avg_system_watts = 0.0;
  double avg_cpu_watts = 0.0;
  double avg_cpu_temp = 0.0;
  std::size_t power_samples = 0;
};

class ApplicationRunnerInterface {
 public:
  virtual ~ApplicationRunnerInterface() = default;
  [[nodiscard]] virtual std::string application() const = 0;
  [[nodiscard]] virtual std::string binary_hash() const = 0;
  virtual Result<RunResult> Run(const Configuration& config) = 0;
  // How many Run() calls may safely be in flight at once. 1 (the default)
  // keeps the sweep serial — right for stateful runners like the cluster
  // simulator, whose runs share a clock and BMC. Runners whose Run() is
  // reentrant (e.g. pure-compute or per-run-state runners) can return more
  // and BenchmarkService will fan the sweep out across its thread pool.
  [[nodiscard]] virtual int max_concurrency() const { return 1; }
};

// ----- System Service: telemetry sampling (IPMI implementation).
struct TelemetrySample {
  double system_watts = 0.0;
  double cpu_watts = 0.0;
  double cpu_temp = 0.0;
};

class SystemServiceInterface {
 public:
  virtual ~SystemServiceInterface() = default;
  virtual Result<TelemetrySample> Sample() = 0;
};

// ----- System Info: identity of the machine (lscpu implementation).
class SystemInfoInterface {
 public:
  virtual ~SystemInfoInterface() = default;
  virtual Result<SystemRecord> Gather() = 0;
};

// ----- Local Storage: settings + pre-loaded model files (ETC storage).
class LocalStorageInterface {
 public:
  virtual ~LocalStorageInterface() = default;
  virtual Result<Json> LoadSettings() = 0;
  virtual Status SaveSettings(const Json& settings) = 0;
  // Resolves a relative name into a full path under the storage root.
  [[nodiscard]] virtual std::string ResolvePath(const std::string& name) const = 0;
  virtual Status WriteFile(const std::string& name, const std::string& data) = 0;
  virtual Result<std::string> ReadFile(const std::string& name) = 0;
};

// ----- File Repository: blob storage for serialized optimizers.
class FileRepositoryInterface {
 public:
  virtual ~FileRepositoryInterface() = default;
  // Stores the blob, returning its repository path.
  virtual Result<std::string> Save(const std::string& name,
                                   const std::string& content) = 0;
  virtual Result<std::string> Load(const std::string& path) = 0;
};

using RepositoryPtr = std::shared_ptr<RepositoryInterface>;
using OptimizerPtr = std::shared_ptr<OptimizerInterface>;
using RunnerPtr = std::shared_ptr<ApplicationRunnerInterface>;
using SystemServicePtr = std::shared_ptr<SystemServiceInterface>;
using SystemInfoPtr = std::shared_ptr<SystemInfoInterface>;
using LocalStoragePtr = std::shared_ptr<LocalStorageInterface>;
using FileRepositoryPtr = std::shared_ptr<FileRepositoryInterface>;

}  // namespace eco::chronus
