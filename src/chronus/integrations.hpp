// System integrations (the outer Clean Architecture ring):
//  - IpmiSystemService: telemetry via the BMC simulator (paper: IPMI).
//  - LscpuSystemInfo: system identity via the virtual procfs (paper: lscpu).
//  - SimulatedHpcgRunner: the HPCG Application Runner. It reproduces the
//    paper's benchmark flow end-to-end: render the Listing-6 sbatch script,
//    submit it to the cluster simulator, sample IPMI while the job runs,
//    and report GFLOPS + energy.
//  - RealHpcgRunner: runs the actual mini-HPCG solver on the host for a
//    genuine GFLOP/s rating (power still comes from the model — there is no
//    wattmeter on this machine; DESIGN.md documents the substitution).
#pragma once

#include <string>

#include "chronus/interfaces.hpp"
#include "hpcg/benchmark.hpp"
#include "ipmi/bmc.hpp"
#include "ipmi/sampler.hpp"
#include "slurm/cluster.hpp"
#include "sysinfo/procfs.hpp"

namespace eco::chronus {

class IpmiSystemService : public SystemServiceInterface {
 public:
  explicit IpmiSystemService(ipmi::BmcSimulator* bmc) : bmc_(bmc) {}
  Result<TelemetrySample> Sample() override;

 private:
  ipmi::BmcSimulator* bmc_;
};

// Multi-node power measurement (§3.2: "in a multi-node configuration,
// obtaining power data necessitates an API measuring power consumption
// across multiple nodes ... both scenarios aim to achieve the same goal"):
// the same SystemService interface, implemented by summing several BMCs.
class AggregateSystemService : public SystemServiceInterface {
 public:
  explicit AggregateSystemService(std::vector<ipmi::BmcSimulator*> bmcs)
      : bmcs_(std::move(bmcs)) {}
  Result<TelemetrySample> Sample() override;

 private:
  std::vector<ipmi::BmcSimulator*> bmcs_;
};

class LscpuSystemInfo : public SystemInfoInterface {
 public:
  explicit LscpuSystemInfo(const sysinfo::VirtualProcFs* procfs)
      : procfs_(procfs) {}
  Result<SystemRecord> Gather() override;

 private:
  const sysinfo::VirtualProcFs* procfs_;
};

struct SimulatedRunnerOptions {
  std::string hpcg_path = "../hpcg/build/bin/xhpcg";
  hpcg::HpcgProblem problem = hpcg::HpcgProblem::Official();
  // Sizing of the run: iteration count chosen so the reference configuration
  // runs ~this long (the paper's ~20-minute jobs).
  double target_seconds = 1109.0;
  double sample_interval_s = 3.0;
  double time_limit_s = 2 * 3600.0;
  std::uint64_t bmc_seed = 17;
};

class SimulatedHpcgRunner : public ApplicationRunnerInterface {
 public:
  // `cluster` must outlive the runner. Benchmarks run on node 0, whose BMC
  // this runner owns (Chronus samples the node it benchmarks, §3.1.2).
  SimulatedHpcgRunner(slurm::ClusterSim* cluster,
                      SimulatedRunnerOptions options = {});

  [[nodiscard]] std::string application() const override { return "hpcg"; }
  [[nodiscard]] std::string binary_hash() const override;
  Result<RunResult> Run(const Configuration& config) override;

  // The last run's full power trace (Figure 15 needs the time series).
  [[nodiscard]] const ipmi::PowerTrace& last_trace() const { return trace_; }
  // The last generated sbatch script (Listing 6).
  [[nodiscard]] const std::string& last_script() const { return last_script_; }

 private:
  slurm::ClusterSim* cluster_;
  SimulatedRunnerOptions options_;
  ipmi::BmcSimulator bmc_;
  ipmi::PowerTrace trace_;
  std::string last_script_;
};

struct RealRunnerOptions {
  hpcg::Geometry geometry{24, 24, 24};
  int iterations_per_set = 25;
  int sets = 1;
};

class RealHpcgRunner : public ApplicationRunnerInterface {
 public:
  explicit RealHpcgRunner(RealRunnerOptions options = {});

  [[nodiscard]] std::string application() const override { return "hpcg-real"; }
  [[nodiscard]] std::string binary_hash() const override;
  Result<RunResult> Run(const Configuration& config) override;

  [[nodiscard]] const hpcg::BenchmarkReport& last_report() const {
    return last_report_;
  }

 private:
  RealRunnerOptions options_;
  hpcg::BenchmarkReport last_report_;
};

}  // namespace eco::chronus
