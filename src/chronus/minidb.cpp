#include "chronus/minidb.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace eco::chronus {

MiniDb::MiniDb(std::string path) : path_(std::move(path)) {}

// On-disk format: one CSV document where every record carries a type tag in
// its first cell — "T",<table-name> starts a table, "H",<columns...> is its
// header, "R",<cells...> is a data row. Because everything goes through the
// CSV codec, cell values containing newlines, commas, quotes, or text that
// looks like a section marker round-trip safely (the property fuzzer caught
// a line-oriented earlier format tripping over exactly those).
Status MiniDb::Open() {
  if (path_.empty()) return Status::Ok();
  std::ifstream in(path_);
  if (!in) return Status::Ok();  // fresh database
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto parsed = CsvParse(buffer.str());
  if (!parsed.ok()) return Status::Error("minidb: " + parsed.message());

  tables_.clear();
  Table* current = nullptr;
  for (const CsvRow& record : *parsed) {
    if (record.empty()) continue;
    const std::string& tag = record[0];
    if (tag == "T") {
      if (record.size() < 2) return Status::Error("minidb: bad table record");
      current = &tables_[record[1]];
      continue;
    }
    if (current == nullptr) {
      return Status::Error("minidb: record before any table declaration");
    }
    if (tag == "H") {
      current->columns.assign(record.begin() + 1, record.end());
      continue;
    }
    if (tag != "R") return Status::Error("minidb: unknown record tag " + tag);
    DbRow row;
    for (std::size_t c = 1; c < record.size() && c - 1 < current->columns.size();
         ++c) {
      row[current->columns[c - 1]] = record[c];
    }
    long long id = 0;
    if (ParseInt64(row["id"], id)) {
      current->next_id = std::max(current->next_id, static_cast<int>(id) + 1);
    }
    current->rows.push_back(std::move(row));
  }
  return Status::Ok();
}

Status MiniDb::Flush() const {
  if (path_.empty()) return Status::Ok();
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::Error("minidb: cannot write " + tmp);
    for (const auto& [name, table] : tables_) {
      out << CsvEncodeRow({"T", name}) << '\n';
      CsvRow header;
      header.push_back("H");
      header.insert(header.end(), table.columns.begin(), table.columns.end());
      out << CsvEncodeRow(header) << '\n';
      for (const auto& row : table.rows) {
        CsvRow cells;
        cells.reserve(table.columns.size() + 1);
        cells.push_back("R");
        for (const auto& col : table.columns) {
          const auto it = row.find(col);
          cells.push_back(it == row.end() ? "" : it->second);
        }
        out << CsvEncodeRow(cells) << '\n';
      }
    }
    if (!out.good()) return Status::Error("minidb: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::Error("minidb: rename failed: " + path_);
  }
  return Status::Ok();
}

Result<int> MiniDb::Insert(const std::string& table_name, DbRow row) {
  Table& table = tables_[table_name];
  const int id = table.next_id++;
  row["id"] = std::to_string(id);
  for (const auto& [key, value] : row) {
    (void)value;
    if (std::find(table.columns.begin(), table.columns.end(), key) ==
        table.columns.end()) {
      table.columns.push_back(key);
    }
  }
  table.rows.push_back(std::move(row));
  return id;
}

Status MiniDb::Update(const std::string& table_name, int id, DbRow row) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) return Status::Error("minidb: no table " + table_name);
  for (auto& existing : it->second.rows) {
    long long row_id = 0;
    const auto id_it = existing.find("id");
    if (id_it != existing.end() && ParseInt64(id_it->second, row_id) &&
        row_id == id) {
      row["id"] = std::to_string(id);
      for (const auto& [key, value] : row) {
        (void)value;
        if (std::find(it->second.columns.begin(), it->second.columns.end(),
                      key) == it->second.columns.end()) {
          it->second.columns.push_back(key);
        }
      }
      existing = std::move(row);
      return Status::Ok();
    }
  }
  return Status::Error("minidb: no row id " + std::to_string(id));
}

Result<std::vector<DbRow>> MiniDb::SelectAll(const std::string& table) const {
  const auto it = tables_.find(table);
  if (it == tables_.end()) return std::vector<DbRow>{};
  return it->second.rows;
}

Result<DbRow> MiniDb::SelectById(const std::string& table, int id) const {
  const auto rows = Where(table, "id", std::to_string(id));
  if (rows.empty()) {
    return Result<DbRow>::Error("minidb: no row id " + std::to_string(id) +
                                " in " + table);
  }
  return rows.front();
}

std::vector<DbRow> MiniDb::Where(const std::string& table,
                                 const std::string& column,
                                 const std::string& value) const {
  std::vector<DbRow> out;
  const auto it = tables_.find(table);
  if (it == tables_.end()) return out;
  for (const auto& row : it->second.rows) {
    const auto cell = row.find(column);
    if (cell != row.end() && cell->second == value) out.push_back(row);
  }
  return out;
}

std::vector<std::string> MiniDb::Tables() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    out.push_back(name);
  }
  return out;
}

}  // namespace eco::chronus
