#include "chronus/gateway.hpp"

#include "sysinfo/simple_hash.hpp"

namespace eco::chronus {

std::shared_ptr<ChronusGateway> ChronusGateway::Wire(
    std::shared_ptr<SlurmConfigService> config_service,
    std::shared_ptr<SettingsService> settings_service,
    std::shared_ptr<sysinfo::VirtualProcFs> procfs) {
  auto gateway = std::make_shared<ChronusGateway>();
  gateway->slurm_config = [config_service](const std::string& system_hash,
                                           const std::string& binary_hash) {
    return config_service->Run(system_hash, binary_hash);
  };
  gateway->system_hash = [procfs] {
    return sysinfo::HashToString(procfs->SystemHash());
  };
  gateway->state = [settings_service] { return settings_service->GetState(); };
  return gateway;
}

}  // namespace eco::chronus
