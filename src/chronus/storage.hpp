// Storage integrations:
//  - EtcStorage: the LocalStorage implementation (paper: "ETC Storage") —
//    settings.json plus pre-loaded model files under a root directory
//    (/etc/chronus on a real system; any directory here).
//  - LocalBlobStorage: the FileRepository implementation — serialized
//    optimizers as files under ./optimizers (§3.2 "File Repository"); the
//    paper notes NFS/S3 could implement the same interface.
#pragma once

#include <string>

#include "chronus/interfaces.hpp"

namespace eco::chronus {

class EtcStorage : public LocalStorageInterface {
 public:
  explicit EtcStorage(std::string root);

  Result<Json> LoadSettings() override;
  Status SaveSettings(const Json& settings) override;
  [[nodiscard]] std::string ResolvePath(const std::string& name) const override;
  Status WriteFile(const std::string& name, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& name) override;

 private:
  std::string root_;
};

class LocalBlobStorage : public FileRepositoryInterface {
 public:
  explicit LocalBlobStorage(std::string root);

  Result<std::string> Save(const std::string& name,
                           const std::string& content) override;
  Result<std::string> Load(const std::string& path) override;

 private:
  std::string root_;
};

// Filesystem helpers shared by the storage backends and the CLI.
Status EnsureDirectory(const std::string& path);
Status WriteWholeFile(const std::string& path, const std::string& data);
Result<std::string> ReadWholeFile(const std::string& path);

}  // namespace eco::chronus
