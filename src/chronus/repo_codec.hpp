// Row codecs shared by the CSV and MiniDb repositories: domain struct <->
// flat string map. Keeping the codecs in one place guarantees the two
// repository backends are wire-compatible with each other.
#pragma once

#include "chronus/domain.hpp"
#include "chronus/minidb.hpp"
#include "common/error.hpp"

namespace eco::chronus {

DbRow SystemToRow(const SystemRecord& system);
Result<SystemRecord> RowToSystem(const DbRow& row);

DbRow BenchmarkToRow(const BenchmarkRecord& benchmark);
Result<BenchmarkRecord> RowToBenchmark(const DbRow& row);

DbRow ModelMetaToRow(const ModelMeta& meta);
Result<ModelMeta> RowToModelMeta(const DbRow& row);

// Canonical column orders (used by the CSV repository headers).
const std::vector<std::string>& SystemColumns();
const std::vector<std::string>& BenchmarkColumns();
const std::vector<std::string>& ModelColumns();

}  // namespace eco::chronus
