// The boundary job_submit_eco calls across.
//
// On real hardware the plugin shells out to `chronus slurm-config
// SYSTEM_HASH BINARY_HASH` and reads JSON from stdout (§3.1.2, §4.2). In
// process, the same contract is a pair of callables. Wire() binds them to a
// SlurmConfigService + SettingsService + procfs — exactly the dependencies
// the CLI command would use.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "chronus/services.hpp"
#include "sysinfo/procfs.hpp"

namespace eco::chronus {

struct ChronusGateway {
  // `chronus slurm-config <system_hash> <binary_hash>` -> configuration JSON.
  std::function<Result<std::string>(const std::string&, const std::string&)>
      slurm_config;
  // The head node's system hash (cpuinfo+meminfo through simple_hash).
  std::function<std::string()> system_hash;
  // Plugin activation state from settings.
  std::function<PluginState()> state;

  static std::shared_ptr<ChronusGateway> Wire(
      std::shared_ptr<SlurmConfigService> config_service,
      std::shared_ptr<SettingsService> settings_service,
      std::shared_ptr<sysinfo::VirtualProcFs> procfs);
};

}  // namespace eco::chronus
