#include "chronus/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "chronus/optimizers.hpp"
#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace eco::chronus {

Result<ModelEvaluation> EvaluateModel(const std::string& type,
                                      const std::vector<BenchmarkRecord>& data,
                                      int folds, std::uint64_t seed) {
  if (folds < 2) {
    return Result<ModelEvaluation>::Error("evaluate: need >= 2 folds");
  }
  if (data.size() < static_cast<std::size_t>(folds)) {
    return Result<ModelEvaluation>::Error(
        "evaluate: fewer records than folds");
  }
  // Validate the type up front.
  auto probe = ModelFactory::Make(type);
  if (!probe.ok()) return Result<ModelEvaluation>::Error(probe.message());

  // Deterministic shuffle.
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }

  std::vector<double> predictions;
  std::vector<double> truths;
  double regret_sum = 0.0;
  int regret_folds = 0;

  for (int fold = 0; fold < folds; ++fold) {
    std::vector<BenchmarkRecord> train;
    std::vector<BenchmarkRecord> test;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(folds)) == fold) {
        test.push_back(data[order[i]]);
      } else {
        train.push_back(data[order[i]]);
      }
    }
    if (train.empty() || test.empty()) continue;

    auto optimizer = ModelFactory::Make(type);
    if (!optimizer.ok()) return Result<ModelEvaluation>::Error(optimizer.message());
    const Status trained = (*optimizer)->Train(train);
    if (!trained.ok()) return Result<ModelEvaluation>::Error(trained.message());

    // Score the whole test fold in one batched pass — the learned
    // optimizers run their compiled engines (bitwise identical to the old
    // per-record Predict loop), brute force the default lookup loop.
    std::vector<Configuration> test_configs;
    test_configs.reserve(test.size());
    for (const auto& record : test) test_configs.push_back(record.config);
    std::vector<double> scores;
    std::vector<bool> scored;
    const Status batch =
        (*optimizer)->PredictBatch(test_configs, &scores, &scored);
    if (!batch.ok()) return Result<ModelEvaluation>::Error(batch.message());
    // Brute force cannot score unseen configurations; score those misses as
    // predicting the training mean (the honest fallback).
    double train_mean = 0.0;
    for (const auto& t : train) train_mean += t.GflopsPerWatt();
    train_mean /= static_cast<double>(train.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
      predictions.push_back(scored[i] ? scores[i] : train_mean);
      truths.push_back(test[i].GflopsPerWatt());
    }

    // Regret: let the fold-model choose over the whole measured space.
    std::vector<Configuration> candidates;
    double best_measured = 0.0;
    for (const auto& record : data) {
      candidates.push_back(record.config);
      best_measured = std::max(best_measured, record.GflopsPerWatt());
    }
    auto choice = (*optimizer)->BestConfiguration(candidates);
    if (choice.ok() && best_measured > 0.0) {
      double chosen_measured = 0.0;
      for (const auto& record : data) {
        if (record.config == *choice) {
          chosen_measured = record.GflopsPerWatt();
          break;
        }
      }
      regret_sum += (best_measured - chosen_measured) / best_measured;
      ++regret_folds;
    }
  }

  ModelEvaluation evaluation;
  evaluation.type = type;
  evaluation.folds = folds;
  evaluation.samples = data.size();
  evaluation.r_squared = ml::RSquared(predictions, truths);
  evaluation.rmse = ml::Rmse(predictions, truths);
  evaluation.mean_regret =
      regret_folds > 0 ? regret_sum / regret_folds : 0.0;
  return evaluation;
}

}  // namespace eco::chronus
