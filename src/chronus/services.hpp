// Application services — Chronus's use cases (§3.1.2):
//   1. Benchmarking        -> BenchmarkService
//   2. Model building      -> InitModelService
//   3. Pre-load model      -> LoadModelService
//   4. Predict config      -> SlurmConfigService (called by job_submit_eco)
//   plus SettingsService (the `chronus set` command) and DeadlineService
//   (§6.2.1 future work: best configuration that still meets a deadline).
//
// Services depend only on the integration interfaces; implementations are
// injected at the entry point (Dependency Inversion, §4.1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "chronus/interfaces.hpp"

namespace eco::chronus {

class BenchmarkService {
 public:
  // `pool` (optional, not owned) fans the sweep out across threads when the
  // runner's max_concurrency() allows it; results are collected and saved in
  // configuration order either way, so repository contents are identical to
  // a serial sweep.
  BenchmarkService(RepositoryPtr repository, RunnerPtr runner,
                   SystemInfoPtr system_info, ThreadPool* pool = nullptr);

  // Registers the system (idempotent) and benchmarks each configuration —
  // all configurations of the system when `configs` is empty (§3.1.2).
  // Individual failed runs are skipped with a warning; the saved records are
  // returned.
  Result<std::vector<BenchmarkRecord>> Run(
      const std::vector<Configuration>& configs = {});

  // Like Run(), but skips configurations this system+binary already has in
  // the repository — restartable sweeps ("The benchmarking process can take
  // a while", §3.3: an interrupted multi-day sweep resumes where it left
  // off). Returns only newly measured records; `skipped` (optional) reports
  // how many were already present.
  Result<std::vector<BenchmarkRecord>> Resume(
      const std::vector<Configuration>& configs = {},
      std::size_t* skipped = nullptr);

  // The system id assigned/found during the last Run().
  [[nodiscard]] int last_system_id() const { return last_system_id_; }

 private:
  RepositoryPtr repository_;
  RunnerPtr runner_;
  SystemInfoPtr system_info_;
  ThreadPool* pool_ = nullptr;
  int last_system_id_ = -1;
};

class InitModelService {
 public:
  InitModelService(RepositoryPtr repository, FileRepositoryPtr blobs);

  // Trains a `type` model on the system's benchmarks, uploads the blob, and
  // records metadata (§3.1.2 "Model building" steps 1-3). `now` stamps
  // created_at.
  Result<ModelMeta> Run(const std::string& type, int system_id, double now);

 private:
  RepositoryPtr repository_;
  FileRepositoryPtr blobs_;
};

class LoadModelService {
 public:
  LoadModelService(RepositoryPtr repository, FileRepositoryPtr blobs,
                   LocalStoragePtr local);

  // Pre-loads model `model_id` onto the head node's local disk and indexes
  // it in settings under "<system_hash>:<binary_hash>" so the predict path
  // never touches the database (§3.1.2 "Pre-load model"). Returns the local
  // file path. The local file is self-contained: model envelope + the
  // system's candidate configurations.
  Result<std::string> Run(int model_id);

 private:
  RepositoryPtr repository_;
  FileRepositoryPtr blobs_;
  LocalStoragePtr local_;
};

class SlurmConfigService {
 public:
  explicit SlurmConfigService(LocalStoragePtr local);

  // The plugin-facing fast path: `chronus slurm-config SYSTEM_HASH
  // BINARY_HASH` returning the configuration JSON (§3.3). Reads only local
  // storage; deserialized models are cached in memory because Slurm gives a
  // submit plugin very little time (§3.1.2).
  Result<std::string> Run(const std::string& system_hash,
                          const std::string& binary_hash);

  // Typed variant used by tests and the deadline service.
  Result<Configuration> Predict(const std::string& system_hash,
                                const std::string& binary_hash);

  void ClearCache() { cache_.clear(); }

 private:
  // One entry per (system_hash, binary_hash). For a random-tree model the
  // optimizer carries its CompiledForest (built during Unpack/Deserialize),
  // so the flattening cost is paid once on the miss path and every
  // subsequent BestConfiguration sweep runs the batched SoA engine.
  struct CachedModel {
    std::string key;
    OptimizerPtr optimizer;
    std::vector<Configuration> candidates;
  };
  Result<const CachedModel*> GetModel(const std::string& system_hash,
                                      const std::string& binary_hash);

  LocalStoragePtr local_;
  std::vector<CachedModel> cache_;
};

// Plugin activation state (`chronus set state ...`, §3.3): "user" applies
// only to jobs opting in via --comment chronus; "active" applies to every
// job; "deactivated" never rewrites.
enum class PluginState { kActive, kUser, kDeactivated };

const char* PluginStateName(PluginState s);
bool ParsePluginState(const std::string& name, PluginState& out);

class SettingsService {
 public:
  explicit SettingsService(LocalStoragePtr local);

  Result<std::string> GetDatabasePath();
  Status SetDatabasePath(const std::string& path);
  Result<std::string> GetBlobStoragePath();
  Status SetBlobStoragePath(const std::string& path);
  [[nodiscard]] PluginState GetState();
  Status SetState(PluginState state);

 private:
  Result<Json> Load();
  Status Store(const Json& settings);
  LocalStoragePtr local_;
};

// §6.2.1: deadline-aware configuration choice. Uses measured durations from
// the repository to filter candidates, then the optimizer to rank.
class DeadlineService {
 public:
  DeadlineService(RepositoryPtr repository, OptimizerPtr optimizer)
      : repository_(std::move(repository)), optimizer_(std::move(optimizer)) {}

  // Most efficient configuration whose measured duration (inflated by
  // `safety_factor`) fits within `deadline_seconds`. Falls back to the
  // fastest measured configuration if none fits.
  Result<Configuration> Choose(int system_id, double deadline_seconds,
                               double safety_factor = 1.1);

 private:
  RepositoryPtr repository_;
  OptimizerPtr optimizer_;
};

}  // namespace eco::chronus
