// Markdown report generator: everything the repository knows about one
// system, rendered for humans — the benchmark table sorted by efficiency,
// the headline saving vs. the max-frequency default, and the trained
// models. (`chronus report --system N` on the CLI.)
#pragma once

#include <string>

#include "chronus/interfaces.hpp"

namespace eco::chronus {

Result<std::string> GenerateSystemReport(RepositoryInterface& repository,
                                         int system_id);

}  // namespace eco::chronus
