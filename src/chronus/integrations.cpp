#include "chronus/integrations.hpp"

#include "common/log.hpp"
#include "hw/power_model.hpp"
#include "slurm/sbatch.hpp"
#include "sysinfo/lscpu.hpp"
#include "sysinfo/simple_hash.hpp"

namespace eco::chronus {

Result<TelemetrySample> IpmiSystemService::Sample() {
  if (bmc_ == nullptr) {
    return Result<TelemetrySample>::Error("ipmi: no BMC attached");
  }
  TelemetrySample sample;
  sample.system_watts = bmc_->ReadTotalPower().value;
  sample.cpu_watts = bmc_->ReadCpuPower().value;
  sample.cpu_temp = bmc_->ReadCpuTemp().value;
  return sample;
}

Result<TelemetrySample> AggregateSystemService::Sample() {
  if (bmcs_.empty()) {
    return Result<TelemetrySample>::Error("aggregate: no BMCs attached");
  }
  TelemetrySample sample;
  double temp_sum = 0.0;
  for (ipmi::BmcSimulator* bmc : bmcs_) {
    sample.system_watts += bmc->ReadTotalPower().value;
    sample.cpu_watts += bmc->ReadCpuPower().value;
    temp_sum += bmc->ReadCpuTemp().value;
  }
  // Power sums across the rack; temperature reports the hottest-proxy mean.
  sample.cpu_temp = temp_sum / static_cast<double>(bmcs_.size());
  return sample;
}

Result<SystemRecord> LscpuSystemInfo::Gather() {
  if (procfs_ == nullptr) {
    return Result<SystemRecord>::Error("lscpu: no procfs attached");
  }
  const sysinfo::LscpuInfo info = sysinfo::ReadLscpu(*procfs_);
  if (info.cores <= 0 || info.frequencies.empty()) {
    return Result<SystemRecord>::Error("lscpu: could not parse system info");
  }
  SystemRecord record;
  record.cpu_name = info.cpu_name;
  record.cores = info.cores;
  record.threads_per_core = info.threads_per_core;
  record.frequencies = info.frequencies;
  record.ram_bytes = info.ram_bytes;
  record.system_hash = sysinfo::HashToString(procfs_->SystemHash());
  return record;
}

SimulatedHpcgRunner::SimulatedHpcgRunner(slurm::ClusterSim* cluster,
                                         SimulatedRunnerOptions options)
    : cluster_(cluster),
      options_(options),
      bmc_(&cluster->node(0), ipmi::BmcParams{}, Rng(options.bmc_seed)) {}

std::string SimulatedHpcgRunner::binary_hash() const {
  // Must match what job_submit_eco computes at submit time: the hash of the
  // executable the script sruns (§4.2.1). The plugin cannot see the problem
  // size — a model is keyed by binary identity alone, exactly the paper's
  // simple-model limitation (§6.1.3).
  return sysinfo::HashToString(sysinfo::SimpleHash(options_.hpcg_path));
}

Result<RunResult> SimulatedHpcgRunner::Run(const Configuration& config) {
  // 1. Render the batch script exactly as the paper's Chronus does
  //    (Listing 6) and parse it back into a request — the script is the
  //    interface.
  last_script_ = slurm::GenerateHpcgScript(config.cores, config.frequency,
                                           config.threads_per_core,
                                           options_.hpcg_path);
  slurm::JobRequest base;
  base.name = "HPCG_BENCHMARK";
  base.time_limit_s = options_.time_limit_s;
  auto request = slurm::ParseSbatchScript(last_script_, base);
  if (!request.ok()) return Result<RunResult>::Error(request.message());

  const hpcg::HpcgPerfModel perf(cluster_->node(0).params().perf);
  request->workload = slurm::WorkloadSpec::Hpcg(
      options_.problem,
      perf.IterationsForDuration(options_.problem, options_.target_seconds));

  // 2. Sample the BMC while the job runs (§3.1.2 benchmark step 2).
  ipmi::IpmiSampler sampler(&cluster_->queue(), &bmc_,
                            options_.sample_interval_s);
  sampler.Start();
  auto job = cluster_->RunJobToCompletion(std::move(*request));
  sampler.Stop();
  trace_ = sampler.trace();
  if (!job.ok()) return Result<RunResult>::Error(job.message());

  // 3. Fold the trace + job record into the benchmark result
  //    (§3.1.2 benchmark step 3).
  const ipmi::TraceStats stats = trace_.Stats();
  RunResult result;
  result.gflops = job->gflops;
  result.duration_s = job->RunSeconds();
  result.system_kilojoules = stats.system_kilojoules;
  result.cpu_kilojoules = stats.cpu_kilojoules;
  result.avg_system_watts = stats.avg_system_watts;
  result.avg_cpu_watts = stats.avg_cpu_watts;
  result.avg_cpu_temp = stats.avg_cpu_temp;
  result.power_samples = stats.samples;
  ECO_INFO << "GFLOP/s rating found: " << result.gflops << " ("
           << config.ToString() << ", " << result.avg_system_watts
           << " W avg)";
  return result;
}

RealHpcgRunner::RealHpcgRunner(RealRunnerOptions options) : options_(options) {}

std::string RealHpcgRunner::binary_hash() const {
  const std::string identity =
      "real-hpcg:" + std::to_string(options_.geometry.nx) + "x" +
      std::to_string(options_.geometry.ny) + "x" +
      std::to_string(options_.geometry.nz);
  return sysinfo::HashToString(sysinfo::SimpleHash(identity));
}

Result<RunResult> RealHpcgRunner::Run(const Configuration& config) {
  hpcg::BenchmarkOptions bench;
  bench.geometry = options_.geometry;
  bench.iterations_per_set = options_.iterations_per_set;
  bench.sets = options_.sets;
  last_report_ = hpcg::RunBenchmark(bench);
  if (!last_report_.symmetry_ok) {
    return Result<RunResult>::Error("real hpcg: operator symmetry check failed");
  }

  // Power cannot be measured on this host; estimate from the calibrated
  // model at the requested configuration so the record is complete.
  const hw::PowerModel power(hw::PowerModelParams::Epyc7502P());
  const double watts =
      power
          .SystemPower(config.cores, config.frequency,
                       config.threads_per_core > 1, 1.0,
                       /*cpu_temp_celsius=*/60.0)
          .system_watts;

  RunResult result;
  result.gflops = last_report_.gflops;
  result.duration_s = last_report_.total_seconds;
  result.avg_system_watts = watts;
  result.avg_cpu_watts =
      power.CpuPower(config.cores, config.frequency,
                     config.threads_per_core > 1, 1.0);
  result.system_kilojoules = watts * last_report_.total_seconds / 1000.0;
  result.cpu_kilojoules =
      result.avg_cpu_watts * last_report_.total_seconds / 1000.0;
  result.avg_cpu_temp = 60.0;
  result.power_samples = 0;
  return result;
}

}  // namespace eco::chronus
