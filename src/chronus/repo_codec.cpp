#include "chronus/repo_codec.hpp"

#include "common/strings.hpp"

namespace eco::chronus {
namespace {

std::string GetString(const DbRow& row, const std::string& key) {
  const auto it = row.find(key);
  return it == row.end() ? "" : it->second;
}

bool GetInt(const DbRow& row, const std::string& key, long long& out) {
  return ParseInt64(GetString(row, key), out);
}

bool GetDouble(const DbRow& row, const std::string& key, double& out) {
  return ParseDouble(GetString(row, key), out);
}

}  // namespace

DbRow SystemToRow(const SystemRecord& system) {
  DbRow row;
  if (system.id >= 0) row["id"] = std::to_string(system.id);
  row["cpu_name"] = system.cpu_name;
  row["cores"] = std::to_string(system.cores);
  row["threads_per_core"] = std::to_string(system.threads_per_core);
  std::vector<std::string> freqs;
  freqs.reserve(system.frequencies.size());
  for (const KiloHertz f : system.frequencies) freqs.push_back(std::to_string(f));
  row["frequencies"] = Join(freqs, ";");
  row["ram_bytes"] = std::to_string(system.ram_bytes);
  row["system_hash"] = system.system_hash;
  return row;
}

Result<SystemRecord> RowToSystem(const DbRow& row) {
  SystemRecord system;
  long long v = 0;
  if (GetInt(row, "id", v)) system.id = static_cast<int>(v);
  system.cpu_name = GetString(row, "cpu_name");
  if (!GetInt(row, "cores", v)) {
    return Result<SystemRecord>::Error("system row: bad cores");
  }
  system.cores = static_cast<int>(v);
  if (GetInt(row, "threads_per_core", v)) {
    system.threads_per_core = static_cast<int>(v);
  }
  for (const auto& token : Split(GetString(row, "frequencies"), ';')) {
    long long khz = 0;
    if (ParseInt64(token, khz) && khz > 0) {
      system.frequencies.push_back(static_cast<KiloHertz>(khz));
    }
  }
  if (GetInt(row, "ram_bytes", v)) {
    system.ram_bytes = static_cast<std::uint64_t>(v);
  }
  system.system_hash = GetString(row, "system_hash");
  return system;
}

DbRow BenchmarkToRow(const BenchmarkRecord& b) {
  DbRow row;
  if (b.id >= 0) row["id"] = std::to_string(b.id);
  row["system_id"] = std::to_string(b.system_id);
  row["application"] = b.application;
  row["binary_hash"] = b.binary_hash;
  row["cores"] = std::to_string(b.config.cores);
  row["threads_per_core"] = std::to_string(b.config.threads_per_core);
  row["frequency"] = std::to_string(b.config.frequency);
  row["gflops"] = FormatDouble(b.gflops, 6);
  row["duration_s"] = FormatDouble(b.duration_s, 3);
  row["system_kj"] = FormatDouble(b.system_kilojoules, 4);
  row["cpu_kj"] = FormatDouble(b.cpu_kilojoules, 4);
  row["avg_system_w"] = FormatDouble(b.avg_system_watts, 3);
  row["avg_cpu_w"] = FormatDouble(b.avg_cpu_watts, 3);
  row["avg_cpu_temp"] = FormatDouble(b.avg_cpu_temp, 2);
  return row;
}

Result<BenchmarkRecord> RowToBenchmark(const DbRow& row) {
  BenchmarkRecord b;
  long long v = 0;
  if (GetInt(row, "id", v)) b.id = static_cast<int>(v);
  if (!GetInt(row, "system_id", v)) {
    return Result<BenchmarkRecord>::Error("benchmark row: bad system_id");
  }
  b.system_id = static_cast<int>(v);
  b.application = GetString(row, "application");
  b.binary_hash = GetString(row, "binary_hash");
  if (GetInt(row, "cores", v)) b.config.cores = static_cast<int>(v);
  if (GetInt(row, "threads_per_core", v)) {
    b.config.threads_per_core = static_cast<int>(v);
  }
  if (GetInt(row, "frequency", v)) {
    b.config.frequency = static_cast<KiloHertz>(v);
  }
  GetDouble(row, "gflops", b.gflops);
  GetDouble(row, "duration_s", b.duration_s);
  GetDouble(row, "system_kj", b.system_kilojoules);
  GetDouble(row, "cpu_kj", b.cpu_kilojoules);
  GetDouble(row, "avg_system_w", b.avg_system_watts);
  GetDouble(row, "avg_cpu_w", b.avg_cpu_watts);
  GetDouble(row, "avg_cpu_temp", b.avg_cpu_temp);
  return b;
}

DbRow ModelMetaToRow(const ModelMeta& meta) {
  DbRow row;
  if (meta.id >= 0) row["id"] = std::to_string(meta.id);
  row["system_id"] = std::to_string(meta.system_id);
  row["type"] = meta.type;
  row["application"] = meta.application;
  row["binary_hash"] = meta.binary_hash;
  row["blob_path"] = meta.blob_path;
  row["created_at"] = FormatDouble(meta.created_at, 3);
  return row;
}

Result<ModelMeta> RowToModelMeta(const DbRow& row) {
  ModelMeta meta;
  long long v = 0;
  if (GetInt(row, "id", v)) meta.id = static_cast<int>(v);
  if (!GetInt(row, "system_id", v)) {
    return Result<ModelMeta>::Error("model row: bad system_id");
  }
  meta.system_id = static_cast<int>(v);
  meta.type = GetString(row, "type");
  meta.application = GetString(row, "application");
  meta.binary_hash = GetString(row, "binary_hash");
  meta.blob_path = GetString(row, "blob_path");
  GetDouble(row, "created_at", meta.created_at);
  return meta;
}

const std::vector<std::string>& SystemColumns() {
  static const std::vector<std::string> cols = {
      "id",          "cpu_name",  "cores", "threads_per_core",
      "frequencies", "ram_bytes", "system_hash"};
  return cols;
}

const std::vector<std::string>& BenchmarkColumns() {
  static const std::vector<std::string> cols = {
      "id",         "system_id", "application", "binary_hash",
      "cores",      "threads_per_core", "frequency", "gflops",
      "duration_s", "system_kj", "cpu_kj",      "avg_system_w",
      "avg_cpu_w",  "avg_cpu_temp"};
  return cols;
}

const std::vector<std::string>& ModelColumns() {
  static const std::vector<std::string> cols = {
      "id", "system_id", "type", "application", "binary_hash", "blob_path",
      "created_at"};
  return cols;
}

}  // namespace eco::chronus
