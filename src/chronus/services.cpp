#include "chronus/services.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "chronus/optimizers.hpp"

namespace eco::chronus {
namespace {

constexpr const char* kPreloadedKey = "preloaded_models";

std::string PreloadKey(const std::string& system_hash,
                       const std::string& binary_hash) {
  return system_hash + ":" + binary_hash;
}

}  // namespace

// -------------------------------------------------------- BenchmarkService

BenchmarkService::BenchmarkService(RepositoryPtr repository, RunnerPtr runner,
                                   SystemInfoPtr system_info, ThreadPool* pool)
    : repository_(std::move(repository)),
      runner_(std::move(runner)),
      system_info_(std::move(system_info)),
      pool_(pool) {}

Result<std::vector<BenchmarkRecord>> BenchmarkService::Run(
    const std::vector<Configuration>& configs) {
  auto system = system_info_->Gather();
  if (!system.ok()) {
    return Result<std::vector<BenchmarkRecord>>::Error(system.message());
  }
  auto system_id = repository_->SaveSystem(*system);
  if (!system_id.ok()) {
    return Result<std::vector<BenchmarkRecord>>::Error(system_id.message());
  }
  last_system_id_ = *system_id;

  std::vector<Configuration> to_run = configs;
  if (to_run.empty()) to_run = system->AllConfigurations();

  // Measure phase. Independent configurations fan out across the pool when
  // the runner tolerates concurrent Run() calls; each slot is written by
  // exactly one task, so collection stays in configuration order.
  const auto count = static_cast<std::int64_t>(to_run.size());
  std::vector<Result<RunResult>> outcomes(
      to_run.size(), Result<RunResult>::Error("benchmark: not run"));
  const auto measure = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto u = static_cast<std::size_t>(i);
      ECO_INFO << "Benchmark " << to_run[u].ToString() << " starting";
      outcomes[u] = runner_->Run(to_run[u]);
    }
  };
  const bool parallel =
      pool_ != nullptr && runner_->max_concurrency() > 1 && count > 1;
  if (parallel) {
    pool_->ParallelFor(0, count, /*grain=*/1, measure);
  } else {
    measure(0, count);
  }

  // Save phase: serial, in configuration order — the repository is not
  // required to be thread-safe, and ids stay deterministic.
  std::vector<BenchmarkRecord> saved;
  for (std::size_t u = 0; u < to_run.size(); ++u) {
    const Configuration& config = to_run[u];
    Result<RunResult>& result = outcomes[u];
    if (!result.ok()) {
      ECO_WARN << "Benchmark " << config.ToString()
               << " failed: " << result.message();
      continue;
    }
    BenchmarkRecord record;
    record.system_id = *system_id;
    record.application = runner_->application();
    record.binary_hash = runner_->binary_hash();
    record.config = config;
    record.gflops = result->gflops;
    record.duration_s = result->duration_s;
    record.system_kilojoules = result->system_kilojoules;
    record.cpu_kilojoules = result->cpu_kilojoules;
    record.avg_system_watts = result->avg_system_watts;
    record.avg_cpu_watts = result->avg_cpu_watts;
    record.avg_cpu_temp = result->avg_cpu_temp;
    auto id = repository_->SaveBenchmark(record);
    if (!id.ok()) {
      return Result<std::vector<BenchmarkRecord>>::Error(id.message());
    }
    record.id = *id;
    saved.push_back(std::move(record));
  }
  if (saved.empty()) {
    return Result<std::vector<BenchmarkRecord>>::Error(
        "benchmark: every configuration failed");
  }
  return saved;
}

Result<std::vector<BenchmarkRecord>> BenchmarkService::Resume(
    const std::vector<Configuration>& configs, std::size_t* skipped) {
  auto system = system_info_->Gather();
  if (!system.ok()) {
    return Result<std::vector<BenchmarkRecord>>::Error(system.message());
  }
  auto system_id = repository_->SaveSystem(*system);
  if (!system_id.ok()) {
    return Result<std::vector<BenchmarkRecord>>::Error(system_id.message());
  }
  auto existing = repository_->ListBenchmarks(*system_id);
  if (!existing.ok()) {
    return Result<std::vector<BenchmarkRecord>>::Error(existing.message());
  }

  std::vector<Configuration> to_run = configs;
  if (to_run.empty()) to_run = system->AllConfigurations();

  const std::string binary = runner_->binary_hash();
  std::vector<Configuration> remaining;
  for (const Configuration& config : to_run) {
    const bool measured = std::any_of(
        existing->begin(), existing->end(), [&](const BenchmarkRecord& b) {
          return b.config == config && b.binary_hash == binary;
        });
    if (!measured) remaining.push_back(config);
  }
  if (skipped != nullptr) *skipped = to_run.size() - remaining.size();
  if (remaining.empty()) {
    last_system_id_ = *system_id;
    ECO_INFO << "benchmark resume: all " << to_run.size()
             << " configurations already measured";
    return std::vector<BenchmarkRecord>{};
  }
  ECO_INFO << "benchmark resume: " << remaining.size() << " of "
           << to_run.size() << " configurations still to measure";
  return Run(remaining);
}

// -------------------------------------------------------- InitModelService

InitModelService::InitModelService(RepositoryPtr repository,
                                   FileRepositoryPtr blobs)
    : repository_(std::move(repository)), blobs_(std::move(blobs)) {}

Result<ModelMeta> InitModelService::Run(const std::string& type, int system_id,
                                        double now) {
  auto optimizer = ModelFactory::Make(type);
  if (!optimizer.ok()) return Result<ModelMeta>::Error(optimizer.message());

  auto benchmarks = repository_->ListBenchmarks(system_id);
  if (!benchmarks.ok()) return Result<ModelMeta>::Error(benchmarks.message());
  if (benchmarks->empty()) {
    return Result<ModelMeta>::Error(
        "init-model: no benchmarks for system " + std::to_string(system_id));
  }

  ECO_INFO << "initializing model of type " << type << ", training on "
           << benchmarks->size() << " benchmarks";
  const Status trained = (*optimizer)->Train(*benchmarks);
  if (!trained.ok()) return Result<ModelMeta>::Error(trained.message());

  const Json envelope = ModelFactory::Pack(**optimizer);
  const std::string blob_name = "model-" + type + "-system" +
                                std::to_string(system_id) + "-" +
                                std::to_string(static_cast<long long>(now)) +
                                ".json";
  auto blob_path = blobs_->Save(blob_name, envelope.Dump(2));
  if (!blob_path.ok()) return Result<ModelMeta>::Error(blob_path.message());

  ModelMeta meta;
  meta.system_id = system_id;
  meta.type = type;
  meta.application = benchmarks->front().application;
  meta.binary_hash = benchmarks->front().binary_hash;
  meta.blob_path = *blob_path;
  meta.created_at = now;
  auto id = repository_->SaveModelMeta(meta);
  if (!id.ok()) return Result<ModelMeta>::Error(id.message());
  meta.id = *id;
  return meta;
}

// -------------------------------------------------------- LoadModelService

LoadModelService::LoadModelService(RepositoryPtr repository,
                                   FileRepositoryPtr blobs,
                                   LocalStoragePtr local)
    : repository_(std::move(repository)),
      blobs_(std::move(blobs)),
      local_(std::move(local)) {}

Result<std::string> LoadModelService::Run(int model_id) {
  auto meta = repository_->GetModelMeta(model_id);
  if (!meta.ok()) return Result<std::string>::Error(meta.message());

  auto blob = blobs_->Load(meta->blob_path);
  if (!blob.ok()) return Result<std::string>::Error(blob.message());
  auto envelope = Json::Parse(*blob);
  if (!envelope.ok()) return Result<std::string>::Error(envelope.message());

  auto system = repository_->GetSystem(meta->system_id);
  if (!system.ok()) return Result<std::string>::Error(system.message());

  // Self-contained local file: the predict path must not need the database.
  JsonArray candidates;
  for (const Configuration& c : system->AllConfigurations()) {
    candidates.push_back(c.ToJson());
  }
  JsonObject local_file;
  local_file["model"] = std::move(*envelope);
  local_file["candidates"] = std::move(candidates);
  local_file["system_hash"] = system->system_hash;
  local_file["binary_hash"] = meta->binary_hash;
  local_file["model_id"] = meta->id;

  const std::string name = "preloaded-model-" + std::to_string(model_id) + ".json";
  const Status written = local_->WriteFile(name, Json(std::move(local_file)).Dump());
  if (!written.ok()) return Result<std::string>::Error(written.message());

  // Index it in settings.
  auto settings = local_->LoadSettings();
  if (!settings.ok()) return Result<std::string>::Error(settings.message());
  JsonObject root = settings->as_object();
  JsonObject preloaded = root[kPreloadedKey].as_object();
  preloaded[PreloadKey(system->system_hash, meta->binary_hash)] = name;
  root[kPreloadedKey] = Json(std::move(preloaded));
  const Status saved = local_->SaveSettings(Json(std::move(root)));
  if (!saved.ok()) return Result<std::string>::Error(saved.message());

  ECO_INFO << "model " << model_id << " pre-loaded to " << local_->ResolvePath(name);
  return local_->ResolvePath(name);
}

// ------------------------------------------------------ SlurmConfigService

SlurmConfigService::SlurmConfigService(LocalStoragePtr local)
    : local_(std::move(local)) {}

Result<const SlurmConfigService::CachedModel*> SlurmConfigService::GetModel(
    const std::string& system_hash, const std::string& binary_hash) {
  const std::string key = PreloadKey(system_hash, binary_hash);
  for (const auto& cached : cache_) {
    if (cached.key == key) return &cached;
  }

  auto settings = local_->LoadSettings();
  if (!settings.ok()) {
    return Result<const CachedModel*>::Error(settings.message());
  }
  const Json& entry = settings->at(kPreloadedKey).at(key);
  if (!entry.is_string()) {
    return Result<const CachedModel*>::Error(
        "slurm-config: no pre-loaded model for " + key);
  }
  auto text = local_->ReadFile(entry.as_string());
  if (!text.ok()) return Result<const CachedModel*>::Error(text.message());
  auto file = Json::Parse(*text);
  if (!file.ok()) return Result<const CachedModel*>::Error(file.message());

  auto optimizer = ModelFactory::Unpack(file->at("model"));
  if (!optimizer.ok()) {
    return Result<const CachedModel*>::Error(optimizer.message());
  }
  CachedModel cached;
  cached.key = key;
  cached.optimizer = *optimizer;
  for (const auto& c : file->at("candidates").as_array()) {
    auto config = Configuration::FromJson(c);
    if (config.ok()) cached.candidates.push_back(*config);
  }
  if (cached.candidates.empty()) {
    return Result<const CachedModel*>::Error(
        "slurm-config: pre-loaded file has no candidates");
  }
  cache_.push_back(std::move(cached));
  return &cache_.back();
}

Result<Configuration> SlurmConfigService::Predict(
    const std::string& system_hash, const std::string& binary_hash) {
  auto model = GetModel(system_hash, binary_hash);
  if (!model.ok()) return Result<Configuration>::Error(model.message());
  return (*model)->optimizer->BestConfiguration((*model)->candidates);
}

Result<std::string> SlurmConfigService::Run(const std::string& system_hash,
                                            const std::string& binary_hash) {
  auto best = Predict(system_hash, binary_hash);
  if (!best.ok()) return Result<std::string>::Error(best.message());
  return best->ToJson().Dump();
}

// --------------------------------------------------------- SettingsService

const char* PluginStateName(PluginState s) {
  switch (s) {
    case PluginState::kActive:
      return "active";
    case PluginState::kUser:
      return "user";
    case PluginState::kDeactivated:
      return "deactivated";
  }
  return "?";
}

bool ParsePluginState(const std::string& name, PluginState& out) {
  const std::string lower = ToLower(name);
  if (lower == "active") {
    out = PluginState::kActive;
  } else if (lower == "user") {
    out = PluginState::kUser;
  } else if (lower == "deactivated" || lower == "deactivate") {
    out = PluginState::kDeactivated;
  } else {
    return false;
  }
  return true;
}

SettingsService::SettingsService(LocalStoragePtr local)
    : local_(std::move(local)) {}

Result<Json> SettingsService::Load() { return local_->LoadSettings(); }

Status SettingsService::Store(const Json& settings) {
  return local_->SaveSettings(settings);
}

Result<std::string> SettingsService::GetDatabasePath() {
  auto settings = Load();
  if (!settings.ok()) return Result<std::string>::Error(settings.message());
  return settings->at("database").as_string();
}

Status SettingsService::SetDatabasePath(const std::string& path) {
  auto settings = Load();
  if (!settings.ok()) return settings.status();
  JsonObject root = settings->as_object();
  root["database"] = path;
  return Store(Json(std::move(root)));
}

Result<std::string> SettingsService::GetBlobStoragePath() {
  auto settings = Load();
  if (!settings.ok()) return Result<std::string>::Error(settings.message());
  return settings->at("blob_storage").as_string();
}

Status SettingsService::SetBlobStoragePath(const std::string& path) {
  auto settings = Load();
  if (!settings.ok()) return settings.status();
  JsonObject root = settings->as_object();
  root["blob_storage"] = path;
  return Store(Json(std::move(root)));
}

PluginState SettingsService::GetState() {
  auto settings = Load();
  PluginState state = PluginState::kUser;  // the paper's default: opt-in
  if (settings.ok() && settings->at("state").is_string()) {
    ParsePluginState(settings->at("state").as_string(), state);
  }
  return state;
}

Status SettingsService::SetState(PluginState state) {
  auto settings = Load();
  if (!settings.ok()) return settings.status();
  JsonObject root = settings->as_object();
  root["state"] = PluginStateName(state);
  return Store(Json(std::move(root)));
}

// --------------------------------------------------------- DeadlineService

Result<Configuration> DeadlineService::Choose(int system_id,
                                              double deadline_seconds,
                                              double safety_factor) {
  auto benchmarks = repository_->ListBenchmarks(system_id);
  if (!benchmarks.ok()) return Result<Configuration>::Error(benchmarks.message());
  if (benchmarks->empty()) {
    return Result<Configuration>::Error("deadline: no benchmarks for system");
  }

  std::vector<Configuration> feasible;
  const BenchmarkRecord* fastest = nullptr;
  for (const auto& b : *benchmarks) {
    if (fastest == nullptr || b.duration_s < fastest->duration_s) fastest = &b;
    if (b.duration_s * safety_factor <= deadline_seconds) {
      feasible.push_back(b.config);
    }
  }
  if (feasible.empty()) {
    ECO_WARN << "deadline: no configuration fits " << deadline_seconds
             << "s; falling back to the fastest measured";
    return fastest->config;
  }
  return optimizer_->BestConfiguration(feasible);
}

}  // namespace eco::chronus
