#include "chronus/env.hpp"

namespace eco::chronus {

ChronusEnv MakeSimEnv(const EnvOptions& options) {
  ChronusEnv env;
  env.cluster = std::make_shared<slurm::ClusterSim>(options.cluster);
  env.procfs = std::make_shared<sysinfo::VirtualProcFs>(
      options.cluster.node.machine);

  std::string workdir = options.workdir;
  if (!workdir.empty() && workdir.back() == '/') workdir.pop_back();

  RepositoryKind repo_kind = options.repository;
  if (workdir.empty()) {
    repo_kind = RepositoryKind::kMemory;
    env.local = std::make_shared<EtcStorage>("/tmp/chronus-mem-etc");
    env.blobs = std::make_shared<LocalBlobStorage>("/tmp/chronus-mem-blobs");
  } else {
    EnsureDirectory(workdir);
    env.local = std::make_shared<EtcStorage>(workdir + "/etc/chronus");
    env.blobs = std::make_shared<LocalBlobStorage>(workdir + "/optimizers");
  }

  switch (repo_kind) {
    case RepositoryKind::kMemory:
      env.repository = std::make_shared<MiniDbRepository>("");
      break;
    case RepositoryKind::kMiniDb:
      env.repository =
          std::make_shared<MiniDbRepository>(workdir + "/data.db");
      break;
    case RepositoryKind::kCsv: {
      const std::string dir = workdir + "/database";
      EnsureDirectory(dir);
      env.repository = std::make_shared<CsvRepository>(dir);
      break;
    }
  }

  env.runner = std::make_shared<SimulatedHpcgRunner>(env.cluster.get(),
                                                     options.runner);
  env.system_info = std::make_shared<LscpuSystemInfo>(env.procfs.get());

  env.benchmark = std::make_shared<BenchmarkService>(env.repository,
                                                     env.runner,
                                                     env.system_info);
  env.init_model =
      std::make_shared<InitModelService>(env.repository, env.blobs);
  env.load_model = std::make_shared<LoadModelService>(env.repository,
                                                      env.blobs, env.local);
  env.slurm_config = std::make_shared<SlurmConfigService>(env.local);
  env.settings = std::make_shared<SettingsService>(env.local);
  env.gateway =
      ChronusGateway::Wire(env.slurm_config, env.settings, env.procfs);
  return env;
}

Result<ModelMeta> RunFullPipeline(ChronusEnv& env,
                                  const std::vector<Configuration>& configs,
                                  const std::string& model_type) {
  auto benchmarks = env.benchmark->Run(configs);
  if (!benchmarks.ok()) return Result<ModelMeta>::Error(benchmarks.message());

  auto meta = env.init_model->Run(model_type, env.benchmark->last_system_id(),
                                  env.cluster->Now());
  if (!meta.ok()) return meta;

  auto preloaded = env.load_model->Run(meta->id);
  if (!preloaded.ok()) return Result<ModelMeta>::Error(preloaded.message());
  return meta;
}

}  // namespace eco::chronus
