// The three Optimizer implementations the paper ships (§3.2 Figure 5,
// `chronus init-model --model [brute-force|linear-regression|random-tree]`)
// plus the ModelFactory that maps the persisted type string back to an
// implementation (§4.1 Listing 2).
//
// All three predict GFLOPS/W from a (cores, threads_per_core, frequency)
// configuration, trained on BenchmarkRecords.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "chronus/interfaces.hpp"
#include "ml/forest_inference.hpp"
#include "ml/linear_regression.hpp"
#include "ml/random_forest.hpp"

namespace eco::chronus {

// argmax of `predict` over the candidates — the serial sweep every
// BestConfiguration is defined against. Tie-breaking contract: the
// comparison is a strict `>`, so the FIRST candidate to reach the maximum
// wins and later candidates with an equal score never displace it. That
// makes a batched argmax over precomputed scores (ArgmaxFromScores)
// provably select the same configuration as this sweep. Candidates that
// fail to score (brute force off-grid) are skipped; every candidate
// failing — including an empty candidate list — is an error.
Result<Configuration> ArgmaxPrediction(
    const std::vector<Configuration>& candidates,
    const std::function<Result<double>(const Configuration&)>& predict);

// First-wins argmax over batch-predicted scores: scores[i]/scored[i] as
// produced by OptimizerInterface::PredictBatch. Same tie-breaking and
// all-fail contract as ArgmaxPrediction, so for any optimizer whose
// PredictBatch matches its Predict, the two sweeps pick identically.
Result<Configuration> ArgmaxFromScores(
    const std::vector<Configuration>& candidates,
    const std::vector<double>& scores, const std::vector<bool>& scored);

// Exhaustive lookup of measured configurations; the best configuration is
// the best *measured* one. Predict() fails for configurations that were
// never benchmarked — precise but zero generalisation.
class BruteForceOptimizer : public OptimizerInterface {
 public:
  static std::string Name() { return "brute-force"; }
  [[nodiscard]] std::string type() const override { return Name(); }

  Status Train(const std::vector<BenchmarkRecord>& benchmarks) override;
  Result<double> Predict(const Configuration& config) const override;
  Result<Configuration> BestConfiguration(
      const std::vector<Configuration>& candidates) const override;

  [[nodiscard]] Json Serialize() const override;
  Status Deserialize(const Json& json) override;

 private:
  using Key = std::tuple<int, int, KiloHertz>;
  static Key MakeKey(const Configuration& c) {
    return {c.cores, c.threads_per_core, c.frequency};
  }
  std::map<Key, double> table_;  // config -> mean measured GFLOPS/W
};

class LinearRegressionOptimizer : public OptimizerInterface {
 public:
  explicit LinearRegressionOptimizer(ml::LinearRegressionParams params = {});
  static std::string Name() { return "linear-regression"; }
  [[nodiscard]] std::string type() const override { return Name(); }

  Status Train(const std::vector<BenchmarkRecord>& benchmarks) override;
  Result<double> Predict(const Configuration& config) const override;
  // One feature matrix, one vectorized pass (ml::LinearRegression::
  // PredictBatch) — bitwise identical to looping Predict.
  Status PredictBatch(const std::vector<Configuration>& candidates,
                      std::vector<double>* out,
                      std::vector<bool>* scored) const override;
  Result<Configuration> BestConfiguration(
      const std::vector<Configuration>& candidates) const override;

  [[nodiscard]] Json Serialize() const override;
  Status Deserialize(const Json& json) override;

 private:
  ml::LinearRegression model_;
};

class RandomForestOptimizer : public OptimizerInterface {
 public:
  explicit RandomForestOptimizer(ml::ForestParams params = {});
  static std::string Name() { return "random-tree"; }
  [[nodiscard]] std::string type() const override { return Name(); }

  Status Train(const std::vector<BenchmarkRecord>& benchmarks) override;
  Result<double> Predict(const Configuration& config) const override;
  // One feature matrix, one CompiledForest::BatchPredict — bitwise identical
  // to looping Predict (ml/forest_inference.hpp determinism contract).
  Status PredictBatch(const std::vector<Configuration>& candidates,
                      std::vector<double>* out,
                      std::vector<bool>* scored) const override;
  Result<Configuration> BestConfiguration(
      const std::vector<Configuration>& candidates) const override;

  [[nodiscard]] Json Serialize() const override;
  Status Deserialize(const Json& json) override;

 private:
  // Flattens model_ into the SoA engine; on the (never expected) compile
  // failure the optimizer falls back to the pointer walk.
  void RecompileModel();

  ml::RandomForest model_;
  // Compiled once per fitted model. The eco plugin's SlurmConfigService
  // caches this optimizer per (system_hash, binary_hash), so the miss path
  // compiles once per key, then every submit decision reuses the engine.
  std::shared_ptr<const ml::CompiledForest> compiled_;
};

// Feature vector shared by the learned optimizers.
std::vector<double> ConfigurationFeatures(const Configuration& config);

class ModelFactory {
 public:
  // Known type strings, in CLI order.
  static std::vector<std::string> KnownTypes();
  // Fresh, untrained optimizer of the given type.
  static Result<OptimizerPtr> Make(const std::string& type);
  // Wraps a trained optimizer into the storage envelope
  // {"type": ..., "payload": ...}.
  static Json Pack(const OptimizerInterface& optimizer);
  // Reconstructs an optimizer from an envelope.
  static Result<OptimizerPtr> Unpack(const Json& envelope);
};

}  // namespace eco::chronus
