// The three Optimizer implementations the paper ships (§3.2 Figure 5,
// `chronus init-model --model [brute-force|linear-regression|random-tree]`)
// plus the ModelFactory that maps the persisted type string back to an
// implementation (§4.1 Listing 2).
//
// All three predict GFLOPS/W from a (cores, threads_per_core, frequency)
// configuration, trained on BenchmarkRecords.
#pragma once

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "chronus/interfaces.hpp"
#include "ml/linear_regression.hpp"
#include "ml/random_forest.hpp"

namespace eco::chronus {

// Exhaustive lookup of measured configurations; the best configuration is
// the best *measured* one. Predict() fails for configurations that were
// never benchmarked — precise but zero generalisation.
class BruteForceOptimizer : public OptimizerInterface {
 public:
  static std::string Name() { return "brute-force"; }
  [[nodiscard]] std::string type() const override { return Name(); }

  Status Train(const std::vector<BenchmarkRecord>& benchmarks) override;
  Result<double> Predict(const Configuration& config) const override;
  Result<Configuration> BestConfiguration(
      const std::vector<Configuration>& candidates) const override;

  [[nodiscard]] Json Serialize() const override;
  Status Deserialize(const Json& json) override;

 private:
  using Key = std::tuple<int, int, KiloHertz>;
  static Key MakeKey(const Configuration& c) {
    return {c.cores, c.threads_per_core, c.frequency};
  }
  std::map<Key, double> table_;  // config -> mean measured GFLOPS/W
};

class LinearRegressionOptimizer : public OptimizerInterface {
 public:
  explicit LinearRegressionOptimizer(ml::LinearRegressionParams params = {});
  static std::string Name() { return "linear-regression"; }
  [[nodiscard]] std::string type() const override { return Name(); }

  Status Train(const std::vector<BenchmarkRecord>& benchmarks) override;
  Result<double> Predict(const Configuration& config) const override;
  Result<Configuration> BestConfiguration(
      const std::vector<Configuration>& candidates) const override;

  [[nodiscard]] Json Serialize() const override;
  Status Deserialize(const Json& json) override;

 private:
  ml::LinearRegression model_;
};

class RandomForestOptimizer : public OptimizerInterface {
 public:
  explicit RandomForestOptimizer(ml::ForestParams params = {});
  static std::string Name() { return "random-tree"; }
  [[nodiscard]] std::string type() const override { return Name(); }

  Status Train(const std::vector<BenchmarkRecord>& benchmarks) override;
  Result<double> Predict(const Configuration& config) const override;
  Result<Configuration> BestConfiguration(
      const std::vector<Configuration>& candidates) const override;

  [[nodiscard]] Json Serialize() const override;
  Status Deserialize(const Json& json) override;

 private:
  ml::RandomForest model_;
};

// Feature vector shared by the learned optimizers.
std::vector<double> ConfigurationFeatures(const Configuration& config);

class ModelFactory {
 public:
  // Known type strings, in CLI order.
  static std::vector<std::string> KnownTypes();
  // Fresh, untrained optimizer of the given type.
  static Result<OptimizerPtr> Make(const std::string& type);
  // Wraps a trained optimizer into the storage envelope
  // {"type": ..., "payload": ...}.
  static Json Pack(const OptimizerInterface& optimizer);
  // Reconstructs an optimizer from an envelope.
  static Result<OptimizerPtr> Unpack(const Json& envelope);
};

}  // namespace eco::chronus
