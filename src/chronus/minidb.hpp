// MiniDb — a small file-backed table store standing in for the paper's
// SQLite repository (no external dependency available here; DESIGN.md
// records the substitution).
//
// Data model: named tables of string-valued rows with an auto-increment "id"
// column. Persistence is a single text file of CSV sections, written
// atomically (tmp file + rename) on Flush. Good for thousands of rows —
// plenty for benchmark metadata.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace eco::chronus {

using DbRow = std::map<std::string, std::string>;

class MiniDb {
 public:
  // Empty path = in-memory only (Flush becomes a no-op).
  explicit MiniDb(std::string path = "");

  // Loads an existing file; missing file is fine (fresh database).
  Status Open();
  // Persists atomically.
  Status Flush() const;

  // Inserts, assigning the auto-increment id (also stored in the row under
  // "id"). Returns the id.
  Result<int> Insert(const std::string& table, DbRow row);
  // Overwrites the row with this id; error if absent.
  Status Update(const std::string& table, int id, DbRow row);

  [[nodiscard]] Result<std::vector<DbRow>> SelectAll(const std::string& table) const;
  [[nodiscard]] Result<DbRow> SelectById(const std::string& table, int id) const;
  [[nodiscard]] std::vector<DbRow> Where(const std::string& table,
                                         const std::string& column,
                                         const std::string& value) const;

  [[nodiscard]] std::vector<std::string> Tables() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct Table {
    std::vector<std::string> columns;  // union of seen keys, insertion order
    std::vector<DbRow> rows;
    int next_id = 1;
  };

  std::string path_;
  std::map<std::string, Table> tables_;
};

}  // namespace eco::chronus
