#include "chronus/domain.hpp"

#include <sstream>

namespace eco::chronus {

Json Configuration::ToJson() const {
  JsonObject obj;
  obj["cores"] = cores;
  obj["threads_per_core"] = threads_per_core;
  obj["frequency"] = static_cast<long long>(frequency);
  return Json(std::move(obj));
}

Result<Configuration> Configuration::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Result<Configuration>::Error("configuration: expected object");
  }
  Configuration config;
  config.cores = static_cast<int>(json.at("cores").as_int(0));
  config.threads_per_core =
      static_cast<int>(json.at("threads_per_core").as_int(1));
  config.frequency = static_cast<KiloHertz>(json.at("frequency").as_int(0));
  if (config.cores < 1 || config.threads_per_core < 1 || config.frequency == 0) {
    return Result<Configuration>::Error("configuration: invalid fields in " +
                                        json.Dump());
  }
  return config;
}

std::string Configuration::ToString() const {
  std::ostringstream out;
  out << cores << "c@" << KiloHertzToGHz(frequency) << "GHz"
      << (threads_per_core > 1 ? "+ht" : "");
  return out.str();
}

Result<std::vector<Configuration>> ParseConfigurationsFile(
    const std::string& json_text) {
  auto parsed = Json::Parse(json_text);
  if (!parsed.ok()) {
    return Result<std::vector<Configuration>>::Error(parsed.message());
  }
  if (!parsed->is_array()) {
    return Result<std::vector<Configuration>>::Error(
        "configurations: expected a JSON array");
  }
  std::vector<Configuration> out;
  for (const auto& item : parsed->as_array()) {
    auto config = Configuration::FromJson(item);
    if (!config.ok()) {
      return Result<std::vector<Configuration>>::Error(config.message());
    }
    out.push_back(*config);
  }
  return out;
}

std::vector<Configuration> SystemRecord::AllConfigurations() const {
  std::vector<Configuration> out;
  for (int c = 1; c <= cores; ++c) {
    for (const KiloHertz f : frequencies) {
      for (int t = 1; t <= threads_per_core; ++t) {
        out.push_back(Configuration{c, t, f});
      }
    }
  }
  return out;
}

}  // namespace eco::chronus
