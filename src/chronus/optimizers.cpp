#include "chronus/optimizers.hpp"

#include <algorithm>

#include "ml/dataset.hpp"

namespace eco::chronus {
namespace {

ml::Dataset BenchmarksToDataset(const std::vector<BenchmarkRecord>& benchmarks) {
  ml::Dataset data;
  for (const auto& b : benchmarks) {
    data.Add(ConfigurationFeatures(b.config), b.GflopsPerWatt());
  }
  return data;
}

// Flattens the candidates into one row-major feature matrix (the batched
// engines' input); returns the row width.
std::size_t BuildFeatureMatrix(const std::vector<Configuration>& candidates,
                               std::vector<double>* matrix) {
  matrix->clear();
  std::size_t width = 0;
  for (const auto& candidate : candidates) {
    const std::vector<double> row = ConfigurationFeatures(candidate);
    width = row.size();
    matrix->insert(matrix->end(), row.begin(), row.end());
  }
  return width;
}

}  // namespace

Result<Configuration> ArgmaxPrediction(
    const std::vector<Configuration>& candidates,
    const std::function<Result<double>(const Configuration&)>& predict) {
  bool found = false;
  Configuration best;
  double best_value = 0.0;
  for (const auto& candidate : candidates) {
    const Result<double> value = predict(candidate);
    if (!value.ok()) continue;  // e.g. brute force on an unmeasured config
    // Strict `>` keeps the FIRST candidate reaching the max (header
    // contract) — ArgmaxFromScores must mirror this exactly.
    if (!found || *value > best_value) {
      found = true;
      best_value = *value;
      best = candidate;
    }
  }
  if (!found) {
    return Result<Configuration>::Error(
        "optimizer: no candidate could be scored");
  }
  return best;
}

Result<Configuration> ArgmaxFromScores(
    const std::vector<Configuration>& candidates,
    const std::vector<double>& scores, const std::vector<bool>& scored) {
  if (scores.size() != candidates.size() ||
      scored.size() != candidates.size()) {
    return Result<Configuration>::Error(
        "optimizer: score vectors do not match candidates");
  }
  bool found = false;
  std::size_t best = 0;
  double best_value = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!scored[i]) continue;
    if (!found || scores[i] > best_value) {  // same first-wins strict `>`
      found = true;
      best_value = scores[i];
      best = i;
    }
  }
  if (!found) {
    return Result<Configuration>::Error(
        "optimizer: no candidate could be scored");
  }
  return candidates[best];
}

std::vector<double> ConfigurationFeatures(const Configuration& config) {
  return {static_cast<double>(config.cores),
          static_cast<double>(config.threads_per_core),
          KiloHertzToGHz(config.frequency)};
}

// ------------------------------------------------------------- BruteForce

Status BruteForceOptimizer::Train(const std::vector<BenchmarkRecord>& benchmarks) {
  if (benchmarks.empty()) return Status::Error("brute-force: no benchmarks");
  table_.clear();
  std::map<Key, std::pair<double, int>> sums;
  for (const auto& b : benchmarks) {
    auto& [sum, count] = sums[MakeKey(b.config)];
    sum += b.GflopsPerWatt();
    ++count;
  }
  for (const auto& [key, sum_count] : sums) {
    table_[key] = sum_count.first / sum_count.second;
  }
  return Status::Ok();
}

Result<double> BruteForceOptimizer::Predict(const Configuration& config) const {
  const auto it = table_.find(MakeKey(config));
  if (it == table_.end()) {
    return Result<double>::Error("brute-force: configuration not measured: " +
                                 config.ToString());
  }
  return it->second;
}

Result<Configuration> BruteForceOptimizer::BestConfiguration(
    const std::vector<Configuration>& candidates) const {
  // Inherits the default per-candidate PredictBatch (table lookups — nothing
  // to vectorize); the argmax contract is shared with the batched path.
  std::vector<double> scores;
  std::vector<bool> scored;
  const Status status = PredictBatch(candidates, &scores, &scored);
  if (!status.ok()) return Result<Configuration>::Error(status.message());
  return ArgmaxFromScores(candidates, scores, scored);
}

Json BruteForceOptimizer::Serialize() const {
  JsonArray entries;
  for (const auto& [key, value] : table_) {
    JsonObject entry;
    entry["cores"] = std::get<0>(key);
    entry["threads_per_core"] = std::get<1>(key);
    entry["frequency"] = static_cast<long long>(std::get<2>(key));
    entry["gflops_per_watt"] = value;
    entries.push_back(Json(std::move(entry)));
  }
  JsonObject obj;
  obj["entries"] = std::move(entries);
  return Json(std::move(obj));
}

Status BruteForceOptimizer::Deserialize(const Json& json) {
  if (!json.at("entries").is_array()) {
    return Status::Error("brute-force: expected {entries: [...]}");
  }
  table_.clear();
  for (const auto& entry : json.at("entries").as_array()) {
    Configuration config;
    config.cores = static_cast<int>(entry.at("cores").as_int());
    config.threads_per_core =
        static_cast<int>(entry.at("threads_per_core").as_int(1));
    config.frequency =
        static_cast<KiloHertz>(entry.at("frequency").as_int());
    table_[MakeKey(config)] = entry.at("gflops_per_watt").as_number();
  }
  if (table_.empty()) return Status::Error("brute-force: no entries");
  return Status::Ok();
}

// ------------------------------------------------------- LinearRegression

LinearRegressionOptimizer::LinearRegressionOptimizer(
    ml::LinearRegressionParams params)
    : model_(params) {}

Status LinearRegressionOptimizer::Train(
    const std::vector<BenchmarkRecord>& benchmarks) {
  if (benchmarks.empty()) return Status::Error("linear-regression: no benchmarks");
  return model_.Fit(BenchmarksToDataset(benchmarks));
}

Result<double> LinearRegressionOptimizer::Predict(
    const Configuration& config) const {
  if (!model_.fitted()) {
    return Result<double>::Error("linear-regression: not trained");
  }
  return model_.Predict(ConfigurationFeatures(config));
}

Status LinearRegressionOptimizer::PredictBatch(
    const std::vector<Configuration>& candidates, std::vector<double>* out,
    std::vector<bool>* scored) const {
  if (!model_.fitted()) return Status::Error("linear-regression: not trained");
  out->assign(candidates.size(), 0.0);
  scored->assign(candidates.size(), true);
  if (candidates.empty()) return Status::Ok();
  std::vector<double> matrix;
  const std::size_t width = BuildFeatureMatrix(candidates, &matrix);
  return model_.PredictBatch(matrix.data(),
                             static_cast<std::int64_t>(candidates.size()),
                             static_cast<std::int32_t>(width), out->data());
}

Result<Configuration> LinearRegressionOptimizer::BestConfiguration(
    const std::vector<Configuration>& candidates) const {
  std::vector<double> scores;
  std::vector<bool> scored;
  const Status status = PredictBatch(candidates, &scores, &scored);
  if (!status.ok()) return Result<Configuration>::Error(status.message());
  return ArgmaxFromScores(candidates, scores, scored);
}

Json LinearRegressionOptimizer::Serialize() const { return model_.ToJson(); }

Status LinearRegressionOptimizer::Deserialize(const Json& json) {
  auto loaded = ml::LinearRegression::FromJson(json);
  if (!loaded.ok()) return loaded.status();
  model_ = std::move(loaded.value());
  return Status::Ok();
}

// ----------------------------------------------------------- RandomForest

RandomForestOptimizer::RandomForestOptimizer(ml::ForestParams params)
    : model_(params) {}

void RandomForestOptimizer::RecompileModel() {
  compiled_.reset();
  if (!model_.fitted()) return;
  auto compiled = ml::CompiledForest::Compile(model_);
  if (compiled.ok()) {
    compiled_ = std::make_shared<const ml::CompiledForest>(
        std::move(compiled.value()));
  }
}

Status RandomForestOptimizer::Train(
    const std::vector<BenchmarkRecord>& benchmarks) {
  if (benchmarks.empty()) return Status::Error("random-tree: no benchmarks");
  const Status fitted = model_.Fit(BenchmarksToDataset(benchmarks));
  if (!fitted.ok()) return fitted;
  RecompileModel();
  return Status::Ok();
}

Result<double> RandomForestOptimizer::Predict(const Configuration& config) const {
  if (!model_.fitted()) return Result<double>::Error("random-tree: not trained");
  const std::vector<double> features = ConfigurationFeatures(config);
  if (compiled_ != nullptr) {
    // Single-row batch: bitwise identical to the pointer walk below, minus
    // its per-node heap chasing.
    const Result<double> value = compiled_->PredictRow(
        features.data(), static_cast<std::int32_t>(features.size()));
    if (value.ok()) return value;
  }
  return model_.Predict(features);
}

Status RandomForestOptimizer::PredictBatch(
    const std::vector<Configuration>& candidates, std::vector<double>* out,
    std::vector<bool>* scored) const {
  if (!model_.fitted()) return Status::Error("random-tree: not trained");
  out->assign(candidates.size(), 0.0);
  scored->assign(candidates.size(), true);
  if (candidates.empty()) return Status::Ok();
  std::vector<double> matrix;
  const std::size_t width = BuildFeatureMatrix(candidates, &matrix);
  if (compiled_ != nullptr) {
    const Status batched = compiled_->BatchPredict(
        matrix.data(), static_cast<std::int64_t>(candidates.size()),
        static_cast<std::int32_t>(width), out->data());
    if (batched.ok()) return batched;
  }
  // Compile failed or widths mismatched: the pointer walk still answers.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    (*out)[i] = model_.Predict(ConfigurationFeatures(candidates[i]));
  }
  return Status::Ok();
}

Result<Configuration> RandomForestOptimizer::BestConfiguration(
    const std::vector<Configuration>& candidates) const {
  std::vector<double> scores;
  std::vector<bool> scored;
  const Status status = PredictBatch(candidates, &scores, &scored);
  if (!status.ok()) return Result<Configuration>::Error(status.message());
  return ArgmaxFromScores(candidates, scores, scored);
}

Json RandomForestOptimizer::Serialize() const { return model_.ToJson(); }

Status RandomForestOptimizer::Deserialize(const Json& json) {
  auto loaded = ml::RandomForest::FromJson(json);
  if (!loaded.ok()) return loaded.status();
  model_ = std::move(loaded.value());
  RecompileModel();
  return Status::Ok();
}

// ----------------------------------------------------------- ModelFactory

std::vector<std::string> ModelFactory::KnownTypes() {
  return {BruteForceOptimizer::Name(), LinearRegressionOptimizer::Name(),
          RandomForestOptimizer::Name()};
}

Result<OptimizerPtr> ModelFactory::Make(const std::string& type) {
  if (type == BruteForceOptimizer::Name()) {
    return OptimizerPtr(std::make_shared<BruteForceOptimizer>());
  }
  if (type == LinearRegressionOptimizer::Name()) {
    return OptimizerPtr(std::make_shared<LinearRegressionOptimizer>());
  }
  if (type == RandomForestOptimizer::Name()) {
    return OptimizerPtr(std::make_shared<RandomForestOptimizer>());
  }
  return Result<OptimizerPtr>::Error("Unknown optimizer type: " + type);
}

Json ModelFactory::Pack(const OptimizerInterface& optimizer) {
  JsonObject envelope;
  envelope["type"] = optimizer.type();
  envelope["payload"] = optimizer.Serialize();
  return Json(std::move(envelope));
}

Result<OptimizerPtr> ModelFactory::Unpack(const Json& envelope) {
  if (!envelope.is_object() || !envelope.at("type").is_string()) {
    return Result<OptimizerPtr>::Error("model envelope: missing type");
  }
  auto optimizer = Make(envelope.at("type").as_string());
  if (!optimizer.ok()) return optimizer;
  const Status loaded = (*optimizer)->Deserialize(envelope.at("payload"));
  if (!loaded.ok()) return Result<OptimizerPtr>::Error(loaded.message());
  return optimizer;
}

}  // namespace eco::chronus
