// Model quality evaluation: k-fold cross-validation of an Optimizer type
// over a set of benchmark records. This quantifies the paper's §6.1.3
// "simple model" concern — how well does each model type actually predict
// GFLOPS/W on configurations it has not seen?
#pragma once

#include <string>
#include <vector>

#include "chronus/domain.hpp"
#include "common/error.hpp"

namespace eco::chronus {

struct ModelEvaluation {
  std::string type;
  int folds = 0;
  std::size_t samples = 0;
  double r_squared = 0.0;  // out-of-fold R²
  double rmse = 0.0;       // out-of-fold RMSE (GFLOPS/W units)
  // Rank regret: measured GFLOPS/W lost by trusting each fold-model's top
  // pick instead of the measured optimum, averaged over folds (fraction).
  double mean_regret = 0.0;
};

// Runs k-fold CV (deterministic shuffling by `seed`). Needs at least
// `folds` records; brute-force is evaluated too (its out-of-fold predictions
// fail on unseen configs, which scores it honestly).
Result<ModelEvaluation> EvaluateModel(const std::string& type,
                                      const std::vector<BenchmarkRecord>& data,
                                      int folds = 5,
                                      std::uint64_t seed = 2023);

}  // namespace eco::chronus
