// Entry-point wiring (§4.1: "In the entry point of your application, you
// specify which implementations there are for each interface").
//
// MakeSimEnv builds a complete simulated deployment: one cluster, the
// virtual procfs describing its node, a repository (in-memory MiniDb, a
// MiniDb file, or CSV files), blob storage, etc-storage, the simulated HPCG
// runner, and every application service — the object graph the Chronus CLI
// and the benches operate on.
#pragma once

#include <memory>
#include <string>

#include "chronus/gateway.hpp"
#include "chronus/integrations.hpp"
#include "chronus/repositories.hpp"
#include "chronus/services.hpp"
#include "chronus/storage.hpp"
#include "slurm/cluster.hpp"
#include "sysinfo/procfs.hpp"

namespace eco::chronus {

enum class RepositoryKind { kMemory, kMiniDb, kCsv };

struct EnvOptions {
  // Root directory for all on-disk state (settings, blobs, database). Empty
  // = fully in-memory where possible (repository forced to kMemory).
  std::string workdir;
  RepositoryKind repository = RepositoryKind::kMemory;
  slurm::ClusterConfig cluster{};
  SimulatedRunnerOptions runner{};
};

struct ChronusEnv {
  std::shared_ptr<slurm::ClusterSim> cluster;
  std::shared_ptr<sysinfo::VirtualProcFs> procfs;

  RepositoryPtr repository;
  FileRepositoryPtr blobs;
  LocalStoragePtr local;
  std::shared_ptr<SimulatedHpcgRunner> runner;
  SystemInfoPtr system_info;

  std::shared_ptr<BenchmarkService> benchmark;
  std::shared_ptr<InitModelService> init_model;
  std::shared_ptr<LoadModelService> load_model;
  std::shared_ptr<SlurmConfigService> slurm_config;
  std::shared_ptr<SettingsService> settings;
  std::shared_ptr<ChronusGateway> gateway;
};

ChronusEnv MakeSimEnv(const EnvOptions& options);

// Convenience: runs the full paper pipeline on an env — benchmark the given
// configurations, init a model of `model_type`, pre-load it — leaving the
// env ready for job_submit_eco queries. Returns the model meta.
Result<ModelMeta> RunFullPipeline(ChronusEnv& env,
                                  const std::vector<Configuration>& configs,
                                  const std::string& model_type);

}  // namespace eco::chronus
