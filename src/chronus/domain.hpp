// Chronus domain model (the innermost Clean Architecture ring, §4.1).
//
// These are plain value types: a benchmarkable Configuration, the identity
// of a System, one Benchmark measurement, and model metadata. They know
// nothing about storage, Slurm, or ML — the integration interfaces
// (interfaces.hpp) move them across the boundary.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/units.hpp"

namespace eco::chronus {

// One point of the search space: §3.3's JSON configuration
// {"cores": 32, "threads_per_core": 2, "frequency": 2200000}.
struct Configuration {
  int cores = 1;
  int threads_per_core = 1;
  KiloHertz frequency = 0;

  [[nodiscard]] Json ToJson() const;
  static Result<Configuration> FromJson(const Json& json);

  [[nodiscard]] bool operator==(const Configuration& other) const {
    return cores == other.cores && threads_per_core == other.threads_per_core &&
           frequency == other.frequency;
  }
  [[nodiscard]] std::string ToString() const;
};

// Parses the `--configurations` file format: a JSON array of configurations.
Result<std::vector<Configuration>> ParseConfigurationsFile(
    const std::string& json_text);

struct SystemRecord {
  int id = -1;  // repository-assigned
  std::string cpu_name;
  int cores = 0;
  int threads_per_core = 0;
  std::vector<KiloHertz> frequencies;
  std::uint64_t ram_bytes = 0;
  std::string system_hash;  // simple_hash of cpuinfo+meminfo, §4.2.1

  // All runnable configurations on this system: cores 1..N ×
  // available frequencies × threads-per-core 1..T. This is the default
  // benchmark sweep ("If no configurations are given, it will benchmark all
  // configurations based on the system CPU", §3.1.2).
  [[nodiscard]] std::vector<Configuration> AllConfigurations() const;
};

struct BenchmarkRecord {
  int id = -1;
  int system_id = -1;
  std::string application;  // "hpcg"
  std::string binary_hash;
  Configuration config;
  double gflops = 0.0;
  double duration_s = 0.0;
  double system_kilojoules = 0.0;
  double cpu_kilojoules = 0.0;
  double avg_system_watts = 0.0;
  double avg_cpu_watts = 0.0;
  double avg_cpu_temp = 0.0;

  [[nodiscard]] double GflopsPerWatt() const {
    return avg_system_watts > 0.0 ? gflops / avg_system_watts : 0.0;
  }
};

struct ModelMeta {
  int id = -1;
  int system_id = -1;
  std::string type;         // "brute-force" | "linear-regression" | "random-tree"
  std::string application;
  std::string binary_hash;
  std::string blob_path;    // where the serialized model lives in blob storage
  double created_at = 0.0;  // sim/unix timestamp
};

}  // namespace eco::chronus
