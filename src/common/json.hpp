// Minimal JSON value / parser / serialiser.
//
// The paper's wire formats are JSON: the `--configurations` file passed to
// `chronus benchmark`, the configuration object `chronus slurm-config` returns
// to job_submit_eco, and /etc/chronus/settings.json. This is a small,
// dependency-free implementation covering exactly the JSON the system emits
// and consumes (objects, arrays, strings, numbers, booleans, null; UTF-8
// passthrough; \uXXXX escapes decoded for the BMP).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace eco {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps key order deterministic, which keeps serialised settings and
// golden-file tests stable.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  // NOLINTBEGIN(google-explicit-constructor): value-type conversions wanted.
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : type_(Type::kNumber), number_(v) {}
  Json(long long v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}
  // NOLINTEND(google-explicit-constructor)

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  [[nodiscard]] long long as_int(long long fallback = 0) const {
    return is_number() ? static_cast<long long>(number_) : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const JsonArray& as_array() const { return array_; }
  [[nodiscard]] const JsonObject& as_object() const { return object_; }
  [[nodiscard]] JsonArray& mutable_array() { return array_; }
  [[nodiscard]] JsonObject& mutable_object() { return object_; }

  // Object member access; returns a shared null for missing keys.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  [[nodiscard]] std::string Dump(int indent = 0) const;

  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace eco
