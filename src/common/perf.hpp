// Lightweight wall-clock instrumentation for hot paths.
//
// ScopedTimer accumulates elapsed nanoseconds into a caller-owned counter on
// scope exit (in the spirit of the ScopedChrono idiom), so a subsystem can
// expose cheap always-on timing totals — e.g. ClusterSim's SchedulerStats —
// without a profiler. Counters are plain integers: single-threaded hot paths
// should not pay for atomics.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace eco {

// Monotonic nanosecond clock reading (steady, suitable for intervals only).
[[nodiscard]] std::uint64_t NowNanos();

// Adds the scope's elapsed wall time to `*sink_ns` on destruction. The sink
// must outlive the timer. A null sink makes the timer a no-op, so call sites
// can keep one unconditional ScopedTimer and decide at runtime.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::uint64_t* sink_ns)
      : sink_(sink_ns), start_(sink_ns != nullptr ? NowNanos() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (sink_ != nullptr) *sink_ += NowNanos() - start_;
  }

 private:
  std::uint64_t* sink_;
  std::uint64_t start_;
};

// "1.234 ms" / "567 us" / "89 ns" — for bench and stats output.
[[nodiscard]] std::string FormatNanos(std::uint64_t ns);

}  // namespace eco
