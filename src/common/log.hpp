// Minimal leveled logger modelled on the Chronus log output the paper shows
// (Figure 1): "[14:16:53] INFO GFLOP/s rating found: 9.34829".
//
// The logger is process-global, thread-safe, and writes to stderr by default;
// a sink can be swapped in for tests. Logging below the active level costs a
// single atomic load.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace eco {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* LogLevelName(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Instance();

  void SetLevel(LogLevel level) { level_.store(static_cast<int>(level)); }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load());
  }
  // Replaces the output sink; pass nullptr to restore the stderr sink.
  void SetSink(Sink sink);

  [[nodiscard]] bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load();
  }
  void Write(LogLevel level, const std::string& message);

 private:
  Logger();
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  Sink sink_;
};

namespace internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::Instance().Write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace eco

#define ECO_LOG(level)                                  \
  if (!::eco::Logger::Instance().Enabled(level)) {      \
  } else                                                \
    ::eco::internal::LogLine(level)

#define ECO_DEBUG ECO_LOG(::eco::LogLevel::kDebug)
#define ECO_INFO ECO_LOG(::eco::LogLevel::kInfo)
#define ECO_WARN ECO_LOG(::eco::LogLevel::kWarn)
#define ECO_ERROR ECO_LOG(::eco::LogLevel::kError)
