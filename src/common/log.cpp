#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace eco {
namespace {
std::mutex& SinkMutex() {
  static std::mutex m;
  return m;
}
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() = default;

void Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  sink_ = std::move(sink);
}

void Logger::Write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (sink_) {
    sink_(level, message);
    return;
  }
  std::fprintf(stderr, "%-5s %s\n", LogLevelName(level), message.c_str());
}

}  // namespace eco
