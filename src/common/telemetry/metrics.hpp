// Metrics registry — the process's (or one subsystem's) named counters,
// gauges and fixed-bucket histograms.
//
// This is the observability substrate the schedulers, the eco plugin, the
// energy-gather host and the thread pool publish into (DESIGN.md,
// "Telemetry"). Design rules:
//
//  1. Handles, not lookups, on the hot path. GetCounter()/GetGauge()/
//     GetHistogram() take the registry mutex once; the returned pointer is
//     stable for the registry's lifetime and every update through it is
//     lock-free.
//  2. Sharded atomics for pooled code. A Counter spreads its value over
//     cache-line-sized shards indexed by a per-thread slot, so concurrent
//     Add() calls from ThreadPool workers don't bounce one cache line;
//     single-threaded callers always hit the same shard (one relaxed
//     fetch_add, the "cheap single-threaded fast path").
//  3. Deterministic export. Metrics render sorted by name (std::map), and
//     numbers format identically run-to-run, so Prometheus/JSON dumps are
//     golden-testable.
//
// Naming follows Prometheus conventions: `eco_<subsystem>_<what>[_total]`,
// with labels inline in the name (`eco_sched_jobs_started_total{partition="a"}`
// via LabeledName()).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/perf.hpp"

namespace eco::telemetry {

// Monotone counter. Add() is wait-free; Value() sums the shards (reads are
// rare: exporters and stats snapshots only).
class Counter {
 public:
  static constexpr int kShards = 16;

  void Add(std::uint64_t n = 1) {
    shards_[Slot()].value.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  static std::size_t Slot();
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kShards];
};

// Last-write-wins double value, plus a monotone-max mode for peaks
// (pending-queue high-water marks, pool queue depth).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are inclusive upper bounds, sorted
// ascending; an implicit +Inf bucket catches the rest. Observe() is two
// sharded counter increments plus a CAS for the sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  [[nodiscard]] std::vector<std::uint64_t> BucketCounts() const;
  [[nodiscard]] std::uint64_t Count() const { return count_.Value(); }
  [[nodiscard]] double Sum() const { return sum_.Value(); }
  void Reset();

  // "[0,1) 3  [1,10) 1  [10,+Inf) 0" — the sdiag one-line rendering.
  [[nodiscard]] std::string FormatBuckets() const;

  // Prometheus-style estimated q-quantile: walk the cumulative bucket
  // counts and interpolate linearly inside the target bucket. The first
  // bucket interpolates from 0; a quantile landing in the +Inf bucket
  // returns the last finite bound (the estimate saturates there).
  //
  // Edge-case contract: an EMPTY histogram returns NaN — "no observations"
  // must be distinguishable from "the quantile is 0.0" (a p99 of 0 s is a
  // plausible latency; NaN never is). q outside [0, 1] is clamped into the
  // range, so Quantile(-1) == Quantile(0) and Quantile(2) == Quantile(1).
  [[nodiscard]] double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Counter>> buckets_;  // bounds_.size() + 1
  Counter count_;
  Gauge sum_;
};

// "name{key="value"}" — inline-label naming for per-partition/per-node
// metric families.
[[nodiscard]] std::string LabeledName(const std::string& name,
                                      const std::string& key,
                                      const std::string& value);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Create-or-get; returned pointers stay valid for the registry's lifetime.
  // GetHistogram returns the existing histogram regardless of `bounds` when
  // the name is already registered.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  // Lookup without creating; nullptr when absent.
  [[nodiscard]] const Counter* FindCounter(const std::string& name) const;
  [[nodiscard]] const Gauge* FindGauge(const std::string& name) const;
  [[nodiscard]] const Histogram* FindHistogram(const std::string& name) const;

  // Prometheus text exposition format, metrics sorted by name.
  [[nodiscard]] std::string PrometheusText() const;
  // {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  [[nodiscard]] Json ToJson() const;

  // Zeroes every metric; handles stay valid.
  void Reset();

  // Process-wide default registry (the eco plugin and the thread pool
  // publish here; a ClusterSim defaults to a private registry instead so
  // per-partition families from different clusters never collide).
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Adds the scope's elapsed wall nanoseconds to a Counter on destruction —
// the registry-backed ScopedTimer. A null counter makes it a no-op.
class ScopedCounterTimer {
 public:
  explicit ScopedCounterTimer(Counter* sink)
      : sink_(sink), start_(sink != nullptr ? NowNanos() : 0) {}
  ScopedCounterTimer(const ScopedCounterTimer&) = delete;
  ScopedCounterTimer& operator=(const ScopedCounterTimer&) = delete;
  ~ScopedCounterTimer() {
    if (sink_ != nullptr) sink_->Add(NowNanos() - start_);
  }

 private:
  Counter* sink_;
  std::uint64_t start_;
};

}  // namespace eco::telemetry
