// Structured event tracer — job-lifecycle events and scheduler spans.
//
// The tracer records TraceEvents keyed by (sim_time, seq): sim_time is the
// simulation clock at the moment the event fired, seq a monotone sequence
// number assigned under the tracer mutex. Because every producer in the
// simulator emits from the serial sim thread (never from inside a parallel
// PlanShard), the (sim_time, seq) order — and therefore every exported
// byte — is identical whatever ThreadPool size planned the schedule.
// Wall-clock timings deliberately never appear here; they live in the
// MetricsRegistry.
//
// Disabled cost: callers guard with `tracer != nullptr && tracer->enabled()`
// (one relaxed atomic load, same shape as Logger::Enabled), so a
// disabled or absent tracer costs a branch per site.
//
// Exports:
//  - Jsonl(): one JSON object per line, events sorted by (sim_time, seq) —
//    the structured log for grepping and the lifecycle tests.
//  - ChromeTraceJson(track_names): Chrome trace_event JSON ("traceEvents"
//    array) loadable in chrome://tracing or Perfetto. Track 0 is the
//    scheduler lane (instant events); tracks 1..N map to `track_names`
//    (per-node lanes carrying 'X' complete events for job runs). Sim-time
//    seconds map to microseconds (ts = sim_time * 1e6).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace eco::telemetry {

struct TraceEvent {
  double sim_time = 0.0;   // seconds on the simulation clock
  std::uint64_t seq = 0;   // stable tie-break, assigned by Record()
  char phase = 'i';        // 'i' instant, 'X' complete (has dur_s)
  double dur_s = 0.0;      // 'X' only: duration in sim seconds
  int track = 0;           // 0 = scheduler lane, i+1 = node lane i
  std::string name;        // e.g. "submit", "start", "doom", "job 42"
  std::string category;    // e.g. "lifecycle", "sched", "job"
  JsonObject args;         // event payload (job id, partition, reason, ...)
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The per-site guard: one relaxed load.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Records `event` (seq is assigned here; any caller-set seq is ignored).
  // No-op while disabled, so a race between set_enabled and a guarded
  // caller loses at most that one event.
  void Record(TraceEvent event);

  // Convenience for the common instant case.
  void Instant(double sim_time, std::string name, std::string category,
               JsonObject args, int track = 0);

  void Clear();
  [[nodiscard]] std::size_t size() const;

  // Events sorted by (sim_time, seq).
  [[nodiscard]] std::vector<TraceEvent> SortedEvents() const;

  // One compact JSON object per line, sorted.
  [[nodiscard]] std::string Jsonl() const;

  // Chrome trace_event JSON. `track_names[i]` names tid i (metadata
  // thread_name events); unnamed tracks stay numeric.
  [[nodiscard]] std::string ChromeTraceJson(
      const std::vector<std::string>& track_names) const;

  // Process-wide default tracer (disabled until someone enables it).
  static Tracer& Global();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::uint64_t next_seq_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace eco::telemetry
