#include "common/telemetry/trace.hpp"

#include <algorithm>
#include <utility>

namespace eco::telemetry {
namespace {

bool EventOrder(const TraceEvent& a, const TraceEvent& b) {
  if (a.sim_time != b.sim_time) return a.sim_time < b.sim_time;
  return a.seq < b.seq;
}

Json JsonlObject(const TraceEvent& e) {
  JsonObject obj;
  obj["t"] = Json(e.sim_time);
  obj["seq"] = Json(e.seq);
  obj["ph"] = Json(std::string(1, e.phase));
  obj["name"] = Json(e.name);
  obj["cat"] = Json(e.category);
  obj["track"] = Json(static_cast<long long>(e.track));
  if (e.phase == 'X') obj["dur"] = Json(e.dur_s);
  if (!e.args.empty()) obj["args"] = Json(e.args);
  return Json(std::move(obj));
}

Json ChromeObject(const TraceEvent& e) {
  JsonObject obj;
  obj["name"] = Json(e.name);
  obj["cat"] = Json(e.category);
  obj["ph"] = Json(std::string(1, e.phase));
  obj["ts"] = Json(e.sim_time * 1e6);  // trace_event wants microseconds
  if (e.phase == 'X') obj["dur"] = Json(e.dur_s * 1e6);
  if (e.phase == 'i') obj["s"] = Json(std::string("t"));  // thread-scoped
  obj["pid"] = Json(static_cast<long long>(1));
  obj["tid"] = Json(static_cast<long long>(e.track));
  if (!e.args.empty()) obj["args"] = Json(e.args);
  return Json(std::move(obj));
}

Json ThreadNameMeta(int tid, const std::string& name) {
  JsonObject obj;
  obj["name"] = Json(std::string("thread_name"));
  obj["ph"] = Json(std::string("M"));
  obj["pid"] = Json(static_cast<long long>(1));
  obj["tid"] = Json(static_cast<long long>(tid));
  obj["args"] = Json(JsonObject{{"name", Json(name)}});
  return Json(std::move(obj));
}

}  // namespace

void Tracer::Record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

void Tracer::Instant(double sim_time, std::string name, std::string category,
                     JsonObject args, int track) {
  TraceEvent event;
  event.sim_time = sim_time;
  event.phase = 'i';
  event.track = track;
  event.name = std::move(name);
  event.category = std::move(category);
  event.args = std::move(args);
  Record(std::move(event));
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  next_seq_ = 0;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::SortedEvents() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(), EventOrder);
  return out;
}

std::string Tracer::Jsonl() const {
  std::string out;
  for (const TraceEvent& e : SortedEvents()) {
    out += JsonlObject(e).Dump();
    out += '\n';
  }
  return out;
}

std::string Tracer::ChromeTraceJson(
    const std::vector<std::string>& track_names) const {
  JsonArray events;
  for (std::size_t i = 0; i < track_names.size(); ++i) {
    events.push_back(ThreadNameMeta(static_cast<int>(i), track_names[i]));
  }
  for (const TraceEvent& e : SortedEvents()) {
    events.push_back(ChromeObject(e));
  }
  JsonObject root;
  root["displayTimeUnit"] = Json(std::string("ms"));
  root["traceEvents"] = Json(std::move(events));
  return Json(std::move(root)).Dump();
}

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace eco::telemetry
