#include "common/telemetry/timeseries.hpp"

#include <algorithm>
#include <utility>

namespace eco::telemetry {

TimeSeries::TimeSeries(TimeSeriesOptions options) : options_(options) {
  options_.capacity = std::max<std::size_t>(options_.capacity, 2);
  options_.fanout = std::max(options_.fanout, 2);
  for (auto& ring : rings_) ring.buf.resize(options_.capacity);
}

void TimeSeries::Append(int level, const TsSample& sample, PushStats* stats) {
  Ring& ring = rings_[level];
  if (ring.count == options_.capacity) {
    ++stats->dropped;  // overwrite the oldest retained sample
  } else {
    ++ring.count;
  }
  ring.buf[ring.next] = sample;
  ring.next = (ring.next + 1) % options_.capacity;

  if (level + 1 >= kResolutions) return;
  TsSample& pending = pending_[level];
  int& n = pending_n_[level];
  if (n == 0) {
    pending = sample;
  } else {
    pending.t1 = sample.t1;
    pending.min = std::min(pending.min, sample.min);
    pending.max = std::max(pending.max, sample.max);
    pending.sum += sample.sum;
    pending.count += sample.count;
  }
  if (++n >= options_.fanout) {
    ++stats->compactions;
    const TsSample rolled = pending;
    n = 0;
    Append(level + 1, rolled, stats);
  }
}

TimeSeries::PushStats TimeSeries::Push(double t, double value) {
  PushStats stats;
  TsSample raw;
  raw.t0 = raw.t1 = t;
  raw.min = raw.max = raw.sum = value;
  raw.count = 1;
  Append(0, raw, &stats);
  ++pushed_;
  return stats;
}

std::vector<TsSample> TimeSeries::Samples(int resolution) const {
  std::vector<TsSample> out;
  if (resolution < 0 || resolution >= kResolutions) return out;
  const Ring& ring = rings_[resolution];
  out.reserve(ring.count + 1);
  const std::size_t start =
      (ring.next + options_.capacity - ring.count) % options_.capacity;
  for (std::size_t i = 0; i < ring.count; ++i) {
    out.push_back(ring.buf[(start + i) % options_.capacity]);
  }
  if (resolution > 0 && pending_n_[resolution - 1] > 0) {
    out.push_back(pending_[resolution - 1]);
  }
  return out;
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options)
    : options_(options) {}

void TimeSeriesStore::BindSelfMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  metric_series_ = registry->GetGauge("eco_ts_series");
  metric_samples_ = registry->GetCounter("eco_ts_samples_total");
  metric_compactions_ = registry->GetCounter("eco_ts_compactions_total");
  metric_dropped_ = registry->GetCounter("eco_ts_dropped_total");
  metric_series_->Set(static_cast<double>(series_.size()));
}

void TimeSeriesStore::Track(const std::string& name, Series series) {
  std::lock_guard<std::mutex> lock(mutex_);
  series_.emplace(name, std::move(series));  // first registration wins
  if (metric_series_ != nullptr) {
    metric_series_->Set(static_cast<double>(series_.size()));
  }
}

void TimeSeriesStore::TrackCounter(MetricsRegistry& registry,
                                   const std::string& name) {
  Series series(options_);
  series.counter = registry.GetCounter(name);
  Track(name, std::move(series));
}

void TimeSeriesStore::TrackGauge(MetricsRegistry& registry,
                                 const std::string& name) {
  Series series(options_);
  series.gauge = registry.GetGauge(name);
  Track(name, std::move(series));
}

void TimeSeriesStore::TrackProbe(const std::string& name,
                                 std::function<double()> probe) {
  if (!probe) return;
  Series series(options_);
  series.probe = std::move(probe);
  Track(name, std::move(series));
}

void TimeSeriesStore::SampleAll(double t) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, series] : series_) {
    double value = 0.0;
    if (series.counter != nullptr) {
      value = static_cast<double>(series.counter->Value());
    } else if (series.gauge != nullptr) {
      value = series.gauge->Value();
    } else if (series.probe) {
      value = series.probe();
    }
    const TimeSeries::PushStats stats = series.data.Push(t, value);
    ++samples_total_;
    compactions_total_ += stats.compactions;
    dropped_total_ += stats.dropped;
    if (metric_samples_ != nullptr) metric_samples_->Add(1);
    if (metric_compactions_ != nullptr && stats.compactions > 0) {
      metric_compactions_->Add(stats.compactions);
    }
    if (metric_dropped_ != nullptr && stats.dropped > 0) {
      metric_dropped_->Add(stats.dropped);
    }
  }
}

std::vector<std::string> TimeSeriesStore::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, series] : series_) names.push_back(name);
  return names;
}

bool TimeSeriesStore::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.count(name) > 0;
}

std::vector<TsSample> TimeSeriesStore::Samples(const std::string& name,
                                               int resolution) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  return it->second.data.Samples(resolution);
}

namespace {

Json SampleJson(const TsSample& sample) {
  return Json(JsonObject{{"t0", Json(sample.t0)},
                         {"t1", Json(sample.t1)},
                         {"min", Json(sample.min)},
                         {"max", Json(sample.max)},
                         {"sum", Json(sample.sum)},
                         {"count", Json(sample.count)}});
}

Json SamplesJson(const std::vector<TsSample>& samples) {
  JsonArray array;
  array.reserve(samples.size());
  for (const TsSample& sample : samples) array.push_back(SampleJson(sample));
  return Json(std::move(array));
}

}  // namespace

Json TimeSeriesStore::QueryJson(const std::string& name,
                                int resolution) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end()) return Json();
  return Json(JsonObject{
      {"name", Json(name)},
      {"resolution", Json(resolution)},
      {"samples", SamplesJson(it->second.data.Samples(resolution))}});
}

Json TimeSeriesStore::DumpJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonObject out;
  for (const auto& [name, series] : series_) {
    JsonObject levels;
    for (int r = 0; r < TimeSeries::kResolutions; ++r) {
      levels["r" + std::to_string(r)] = SamplesJson(series.data.Samples(r));
    }
    out[name] = Json(std::move(levels));
  }
  return Json(std::move(out));
}

std::size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

std::uint64_t TimeSeriesStore::samples_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_total_;
}

std::uint64_t TimeSeriesStore::compactions_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compactions_total_;
}

std::uint64_t TimeSeriesStore::dropped_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_total_;
}

}  // namespace eco::telemetry
