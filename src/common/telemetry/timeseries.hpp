// Multi-resolution time-series store for the observability plane.
//
// A TimeSeries is a small set of fixed-capacity ring buffers: level 0 holds
// raw samples, level 1 holds 10x rollups, level 2 holds 100x rollups (the
// fanout is configurable). Every sample keeps {t0, t1, min, max, sum, count}
// so spikes survive compaction — a 1-sample power excursion is still visible
// in the coarsest rollup's max, and averages can be reconstructed from
// sum/count at any resolution.
//
// Rollups are built from a pending aggregation bucket per level, fed on every
// Push — they do NOT depend on ring eviction, so the coarse levels keep a
// longer history than the raw ring even after old raw samples are dropped.
// Evicting a sample from a full ring bumps the store-wide dropped counter;
// completing a rollup bucket bumps the compaction counter.
//
// TimeSeriesStore attaches series to MetricsRegistry handles (Counter/Gauge)
// or to arbitrary probe callbacks, and samples them all on SampleAll(t).
// ClusterSim drives SampleAll from a sim-time event, so the recorded
// trajectories are functions of simulated time only and therefore
// byte-identical across worker-pool sizes, like the Tracer. All public
// methods lock one mutex: the sim thread samples while an ObsServer thread
// serves /timeseries queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/telemetry/metrics.hpp"

namespace eco::telemetry {

// One retained sample: the [t0, t1] span it covers and the min/max/sum/count
// of the raw values merged into it. A raw (level-0) sample has t0 == t1 and
// count == 1.
struct TsSample {
  double t0 = 0.0;
  double t1 = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;
};

struct TimeSeriesOptions {
  // Ring capacity per resolution level, in samples.
  std::size_t capacity = 512;
  // Rollup fanout: level r+1 aggregates `fanout` level-r samples.
  int fanout = 10;
};

class TimeSeries {
 public:
  static constexpr int kResolutions = 3;

  explicit TimeSeries(TimeSeriesOptions options = {});

  struct PushStats {
    std::uint64_t compactions = 0;
    std::uint64_t dropped = 0;
  };

  // Appends a raw sample and feeds the rollup buckets. `t` must be
  // non-decreasing across calls.
  PushStats Push(double t, double value);

  // Samples at `resolution` (0 = raw .. kResolutions-1 = coarsest), oldest
  // first. Includes the partially-filled pending bucket of rollup levels so
  // the freshest data is visible at every resolution.
  [[nodiscard]] std::vector<TsSample> Samples(int resolution) const;

  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }

 private:
  struct Ring {
    std::vector<TsSample> buf;
    std::size_t next = 0;   // slot the next sample lands in
    std::size_t count = 0;  // live samples (<= capacity)
  };

  void Append(int level, const TsSample& sample, PushStats* stats);

  TimeSeriesOptions options_;
  Ring rings_[kResolutions];
  TsSample pending_[kResolutions - 1]{};
  int pending_n_[kResolutions - 1] = {0, 0};
  std::uint64_t pushed_ = 0;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesOptions options = {});

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  // Publishes the store's own resource counters into `registry`:
  //   eco_ts_series (gauge), eco_ts_samples_total, eco_ts_compactions_total,
  //   eco_ts_dropped_total (counters).
  void BindSelfMetrics(MetricsRegistry* registry);

  // Attach a series to a registry handle (created if absent; handles are
  // stable for the registry's lifetime). First registration of a name wins;
  // re-registering is a no-op.
  void TrackCounter(MetricsRegistry& registry, const std::string& name);
  void TrackGauge(MetricsRegistry& registry, const std::string& name);
  // Attach a series to an arbitrary probe, e.g. ClusterSim's instantaneous
  // cluster watts. The probe is invoked during SampleAll.
  void TrackProbe(const std::string& name, std::function<double()> probe);

  // Samples every tracked series at sim-time `t`. Called from the sim
  // thread; concurrent readers are safe.
  void SampleAll(double t);

  [[nodiscard]] std::vector<std::string> Names() const;
  [[nodiscard]] bool Has(const std::string& name) const;
  // Empty vector when the name is unknown or the resolution out of range.
  [[nodiscard]] std::vector<TsSample> Samples(const std::string& name,
                                              int resolution) const;
  // {"name":..., "resolution":..., "samples":[{t0,t1,min,max,sum,count}...]}
  // Deterministic: JsonObject is a std::map. Null when the name is unknown.
  [[nodiscard]] Json QueryJson(const std::string& name, int resolution) const;
  // Every series at every resolution, keyed by name then "r0"/"r1"/"r2".
  [[nodiscard]] Json DumpJson() const;

  [[nodiscard]] std::size_t series_count() const;
  [[nodiscard]] std::uint64_t samples_total() const;
  [[nodiscard]] std::uint64_t compactions_total() const;
  [[nodiscard]] std::uint64_t dropped_total() const;

 private:
  struct Series {
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    std::function<double()> probe;
    TimeSeries data;

    explicit Series(TimeSeriesOptions options) : data(options) {}
  };

  void Track(const std::string& name, Series series);

  TimeSeriesOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;  // sorted: deterministic iteration
  std::uint64_t samples_total_ = 0;
  std::uint64_t compactions_total_ = 0;
  std::uint64_t dropped_total_ = 0;
  Gauge* metric_series_ = nullptr;
  Counter* metric_samples_ = nullptr;
  Counter* metric_compactions_ = nullptr;
  Counter* metric_dropped_ = nullptr;
};

}  // namespace eco::telemetry
