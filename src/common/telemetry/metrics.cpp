#include "common/telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

namespace eco::telemetry {
namespace {

// One prometheus-style number: integers render without a fraction, doubles
// with up to 10 significant digits — both deterministic.
std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

std::string FormatCount(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

// Splits "name{a="b"}" into ("name", "a=\"b\"").
void SplitLabels(const std::string& full, std::string& base,
                 std::string& labels) {
  const std::size_t brace = full.find('{');
  if (brace == std::string::npos) {
    base = full;
    labels.clear();
    return;
  }
  base = full.substr(0, brace);
  const std::size_t close = full.rfind('}');
  labels = full.substr(brace + 1,
                       close == std::string::npos ? std::string::npos
                                                  : close - brace - 1);
}

// Re-assembles a metric line name, appending extra labels (e.g. le=...).
std::string WithLabels(const std::string& base, const std::string& labels,
                       const std::string& extra = "") {
  std::string joined = labels;
  if (!extra.empty()) {
    if (!joined.empty()) joined += ',';
    joined += extra;
  }
  if (joined.empty()) return base;
  return base + "{" + joined + "}";
}

// Emits one "# TYPE" header per base name (metrics are walked in sorted
// order, so label variants of one family are adjacent).
void MaybeTypeHeader(std::string& out, std::string& last_base,
                     const std::string& base, const char* kind) {
  if (base == last_base) return;
  last_base = base;
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += kind;
  out += '\n';
}

}  // namespace

std::size_t Counter::Slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_.push_back(std::make_unique<Counter>());
  }
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())]->Add(1);
  count_.Add(1);
  sum_.Add(v);
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& bucket : buckets_) out.push_back(bucket->Value());
  return out;
}

double Histogram::Quantile(double q) const {
  const auto counts = BucketCounts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  // Contract (metrics.hpp): empty histogram -> NaN, out-of-range q clamps.
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds_.size()) {
      // +Inf bucket: no upper edge to interpolate towards.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = bounds_[i];
    const double fraction =
        (target - before) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, fraction));
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket->Reset();
  count_.Reset();
  sum_.Reset();
}

std::string Histogram::FormatBuckets() const {
  std::string out;
  double lo = 0.0;
  const auto counts = BucketCounts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (!out.empty()) out += "  ";
    out += '[';
    out += i == 0 ? "0" : FormatValue(lo);
    out += ',';
    out += i < bounds_.size() ? FormatValue(bounds_[i]) : "+Inf";
    out += ") ";
    out += FormatCount(counts[i]);
    if (i < bounds_.size()) lo = bounds_[i];
  }
  return out;
}

std::string LabeledName(const std::string& name, const std::string& key,
                        const std::string& value) {
  return name + "{" + key + "=\"" + value + "\"}";
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string last_base;
  std::string base, labels;
  for (const auto& [name, counter] : counters_) {
    SplitLabels(name, base, labels);
    MaybeTypeHeader(out, last_base, base, "counter");
    out += WithLabels(base, labels);
    out += ' ';
    out += FormatCount(counter->Value());
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, gauge] : gauges_) {
    SplitLabels(name, base, labels);
    MaybeTypeHeader(out, last_base, base, "gauge");
    out += WithLabels(base, labels);
    out += ' ';
    out += FormatValue(gauge->Value());
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, hist] : histograms_) {
    SplitLabels(name, base, labels);
    MaybeTypeHeader(out, last_base, base, "histogram");
    const auto counts = hist->BucketCounts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      const std::string le =
          i < hist->bounds().size() ? FormatValue(hist->bounds()[i]) : "+Inf";
      out += WithLabels(base + "_bucket", labels, "le=\"" + le + "\"");
      out += ' ';
      out += FormatCount(cumulative);
      out += '\n';
    }
    out += WithLabels(base + "_sum", labels);
    out += ' ';
    out += FormatValue(hist->Sum());
    out += '\n';
    out += WithLabels(base + "_count", labels);
    out += ' ';
    out += FormatCount(hist->Count());
    out += '\n';
  }
  return out;
}

Json MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonObject counters;
  for (const auto& [name, counter] : counters_) {
    counters[name] = Json(counter->Value());
  }
  JsonObject gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = Json(gauge->Value());
  }
  JsonObject histograms;
  for (const auto& [name, hist] : histograms_) {
    JsonArray bounds;
    for (const double b : hist->bounds()) bounds.push_back(Json(b));
    JsonArray buckets;
    for (const std::uint64_t c : hist->BucketCounts()) {
      buckets.push_back(Json(c));
    }
    histograms[name] = Json(JsonObject{{"bounds", Json(std::move(bounds))},
                                       {"buckets", Json(std::move(buckets))},
                                       {"count", Json(hist->Count())},
                                       {"sum", Json(hist->Sum())}});
  }
  return Json(JsonObject{{"counters", Json(std::move(counters))},
                         {"gauges", Json(std::move(gauges))},
                         {"histograms", Json(std::move(histograms))}});
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace eco::telemetry
