#include "common/csv.hpp"

#include <fstream>
#include <sstream>

namespace eco {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string CsvEncodeRow(const CsvRow& row) {
  // A lone empty field must be quoted: a bare empty line is a record
  // separator to the parser, so [""] would otherwise vanish on round-trip.
  if (row.size() == 1 && row[0].empty()) return "\"\"";
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += NeedsQuoting(row[i]) ? QuoteField(row[i]) : row[i];
  }
  return out;
}

Result<std::vector<CsvRow>> CsvParse(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto flush_field = [&] {
    row.push_back(field);
    field.clear();
  };
  const auto flush_row = [&] {
    flush_field();
    rows.push_back(row);
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Result<std::vector<CsvRow>>::Error(
              "csv: quote inside unquoted field");
        }
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        flush_field();
        row_has_content = true;
        break;
      case '\r':
        break;  // swallow; \n terminates the row
      case '\n':
        if (row_has_content || !field.empty() || !row.empty()) flush_row();
        break;
      default:
        field.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) {
    return Result<std::vector<CsvRow>>::Error("csv: unterminated quoted field");
  }
  if (row_has_content || !field.empty() || !row.empty()) flush_row();
  return rows;
}

Status CsvWriteFile(const std::string& path, const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Error("csv: cannot open for write: " + path);
  for (const auto& row : rows) out << CsvEncodeRow(row) << '\n';
  if (!out.good()) return Status::Error("csv: write failed: " + path);
  return Status::Ok();
}

Result<std::vector<CsvRow>> CsvReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Result<std::vector<CsvRow>>::Error("csv: cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return CsvParse(buffer.str());
}

}  // namespace eco
