// Shared fixed-size thread pool — the runtime every parallel layer (HPCG
// kernels, random-forest training, Chronus sweeps) runs on.
//
// Design rules, in order of importance:
//
//  1. Determinism. Work is split into chunks whose count depends only on
//     (range, grain) — never on the pool size — so a reduction that combines
//     per-chunk partials in chunk order, or a task that forks an Rng per
//     chunk via ChunkRng(), produces bit-identical results on a 1-thread and
//     a 64-thread pool.
//  2. No deadlocks. A ParallelFor issued from inside a worker (nested
//     parallelism) degrades to a serial chunk loop on the calling thread;
//     chunk indices are preserved, so determinism still holds.
//  3. Exceptions propagate. The first exception thrown by any chunk is
//     rethrown on the calling thread after the loop drains; remaining
//     unstarted chunks are cancelled.
//
// The calling thread always participates in chunk execution, so a pool of
// size N uses N-1 background workers and ThreadPool(1) spawns no threads at
// all (pure serial execution, useful as a reference in equivalence tests).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace eco {

class ThreadPool {
 public:
  // fn(chunk_index, begin, end) — half-open [begin, end) slice of the range.
  using ChunkFn = std::function<void(std::int64_t, std::int64_t, std::int64_t)>;
  // fn(begin, end) — for callers that don't need the chunk index.
  using RangeFn = std::function<void(std::int64_t, std::int64_t)>;

  // threads <= 0 selects DefaultThreadCount(). A pool of size 1 runs
  // everything on the calling thread.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution width: background workers + the calling thread.
  [[nodiscard]] int size() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  // ECO_THREADS environment variable when set to a positive integer,
  // otherwise std::thread::hardware_concurrency() (at least 1).
  static int DefaultThreadCount();

  // Process-wide pool, sized once via DefaultThreadCount().
  static ThreadPool& Global();

  // Number of chunks ParallelFor will use for a range of n with this grain —
  // a pure function of (n, grain) so callers can pre-size partial buffers.
  static std::int64_t ChunkCount(std::int64_t n, std::int64_t grain);

  // Deterministic per-chunk RNG: an independent stream derived from (seed,
  // chunk) only. Identical regardless of pool size or execution order.
  static Rng ChunkRng(std::uint64_t seed, std::int64_t chunk);

  // Runs fn over [begin, end) split into ChunkCount(end - begin, grain)
  // chunks of at most `grain` iterations. grain <= 0 selects a default grain
  // (kDefaultGrain), still independent of pool size. Blocks until every
  // chunk has run; rethrows the first chunk exception.
  void ParallelForChunks(std::int64_t begin, std::int64_t end,
                         std::int64_t grain, const ChunkFn& fn);
  void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                   const RangeFn& fn);

  static constexpr std::int64_t kDefaultGrain = 1024;

 private:
  struct Job;
  void WorkerMain();
  static void RunChunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stopping_ = false;
};

}  // namespace eco
