// Discrete-event simulation core.
//
// The cluster simulator, the IPMI sampler, and Chronus's benchmark loop all
// share one virtual clock. Events are (time, sequence, callback) tuples; ties
// break in insertion order so simulations are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace eco {

// Simulated time in seconds since simulation start.
using SimTime = double;

class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  // Schedules `cb` at absolute time `when` (clamped to now for past times).
  // Returns an id usable with Cancel().
  std::uint64_t ScheduleAt(SimTime when, Callback cb);
  std::uint64_t ScheduleAfter(SimTime delay, Callback cb);

  // Cancels a pending event; returns false if already fired or unknown.
  bool Cancel(std::uint64_t id);

  // Runs the next event; returns false if the queue is empty.
  bool Step();
  // Runs until the queue drains or `horizon` is passed (events scheduled at
  // exactly `horizon` still run). Returns the number of events executed.
  std::size_t RunUntil(SimTime horizon);
  std::size_t RunAll();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return live_ids_.empty(); }
  [[nodiscard]] std::size_t pending() const { return live_ids_.size(); }
  // Timestamp of the next live (non-cancelled) event; `fallback` when the
  // queue is empty. Drops cancelled tombstones as a side effect.
  [[nodiscard]] SimTime PeekNextTime(SimTime fallback = 0.0);

 private:
  struct Event {
    SimTime when;
    // Monotone insertion counter. This is the determinism contract: events
    // scheduled at the same timestamp fire strictly in the order they were
    // scheduled, regardless of heap internals or cancellations in between
    // (regression-tested in test_sched_index.cpp). Batch submission and
    // deferred dispatch both rely on it.
    std::uint64_t seq;
    std::uint64_t id;
    Callback cb;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  // Ids of scheduled events that have neither fired nor been cancelled.
  // Cancelled events stay in the priority queue and are dropped when popped.
  std::unordered_set<std::uint64_t> live_ids_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace eco
