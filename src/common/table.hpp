// ASCII table rendering for the benchmark harnesses.
//
// Every bench binary reproduces one of the paper's tables/figures and prints
// it in a fixed-width layout comparable side-by-side with the paper.
#pragma once

#include <string>
#include <vector>

namespace eco {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Renders with a header rule; columns are sized to the widest cell.
  [[nodiscard]] std::string Render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eco
