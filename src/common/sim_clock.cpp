#include "common/sim_clock.hpp"

#include <algorithm>

namespace eco {

std::uint64_t EventQueue::ScheduleAt(SimTime when, Callback cb) {
  Event ev;
  ev.when = std::max(when, now_);
  ev.seq = next_seq_++;
  ev.id = next_id_++;
  ev.cb = std::move(cb);
  queue_.push(std::move(ev));
  live_ids_.insert(next_id_ - 1);
  return next_id_ - 1;
}

std::uint64_t EventQueue::ScheduleAfter(SimTime delay, Callback cb) {
  return ScheduleAt(now_ + std::max(0.0, delay), std::move(cb));
}

bool EventQueue::Cancel(std::uint64_t id) {
  // Already fired or already cancelled (or never existed): report failure
  // and leave the bookkeeping untouched.
  return live_ids_.erase(id) > 0;
}

SimTime EventQueue::PeekNextTime(SimTime fallback) {
  while (!queue_.empty() && live_ids_.count(queue_.top().id) == 0) {
    queue_.pop();
  }
  return queue_.empty() ? fallback : queue_.top().when;
}

bool EventQueue::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (live_ids_.erase(ev.id) == 0) continue;  // cancelled: skip silently
    now_ = ev.when;
    ev.cb(now_);
    return true;
  }
  return false;
}

std::size_t EventQueue::RunUntil(SimTime horizon) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // Drop cancelled tombstones so the horizon check sees the live head
    // (otherwise Step() could skip past a tombstone and run an event that
    // lies beyond the horizon).
    while (!queue_.empty() && live_ids_.count(queue_.top().id) == 0) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > horizon) break;
    if (Step()) ++executed;
  }
  // Even when no event is left at/before the horizon, time advances to it so
  // callers can interleave RunUntil with manual sampling.
  now_ = std::max(now_, horizon);
  return executed;
}

std::size_t EventQueue::RunAll() {
  std::size_t executed = 0;
  while (Step()) ++executed;
  return executed;
}

}  // namespace eco
