// Deterministic pseudo-random number generation.
//
// All stochastic components (IPMI sensor noise, random-forest bootstrap,
// genetic-algorithm mutation, workload generators) draw from an explicitly
// seeded Rng instance so that every test, bench, and example is reproducible
// run-to-run. The generator is xoshiro256**, seeded via SplitMix64.
#pragma once

#include <cstdint>

namespace eco {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform on [0, 2^64).
  std::uint64_t NextU64();
  // Uniform on [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);
  // Uniform on [0, 1).
  double NextDouble();
  // Uniform on [lo, hi).
  double Uniform(double lo, double hi);
  // Standard normal via Box–Muller (cached second variate).
  double NextGaussian();
  // Normal with the given mean / standard deviation.
  double Gaussian(double mean, double stddev);
  // Uniform integer on [lo, hi] inclusive.
  int UniformInt(int lo, int hi);
  // Bernoulli trial.
  bool Chance(double p);

  // Forks an independent stream (useful to give each component its own
  // deterministic stream derived from one master seed).
  Rng Fork();

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace eco
