#include "common/table.hpp"

#include <algorithm>

namespace eco {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      out += "| ";
      out += cell;
      out.append(widths[c] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace eco
