#include "common/perf.hpp"

#include <cstdio>

namespace eco {

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatNanos(std::uint64_t ns) {
  char buf[64];
  if (ns >= 1'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f s", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f us", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu ns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

}  // namespace eco
