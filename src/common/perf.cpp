#include "common/perf.hpp"

#include <cstdio>

namespace eco {

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatNanos(std::uint64_t ns) {
  char buf[64];
  if (ns < 1'000ull) {
    // Sub-microsecond values (including 0) print as integer nanoseconds.
    std::snprintf(buf, sizeof(buf), "%llu ns",
                  static_cast<unsigned long long>(ns));
    return buf;
  }
  // Pick the largest unit whose printed value stays below 1000 — with the
  // twist that "%.3f" rounds, so 999'999'500 ns must already promote to
  // "1.000 s" rather than print "1000.000 ms". 999.9995 is the smallest
  // value "%.3f" renders as 1000.000.
  static constexpr struct {
    double divisor;
    const char* unit;
  } kUnits[] = {{1e3, "us"}, {1e6, "ms"}, {1e9, "s"}};
  for (const auto& u : kUnits) {
    const double value = static_cast<double>(ns) / u.divisor;
    if (value < 999.9995 || u.divisor == 1e9) {
      std::snprintf(buf, sizeof(buf), "%.3f %s", value, u.unit);
      return buf;
    }
  }
  return buf;  // unreachable: the "s" entry always matches
}

}  // namespace eco
