// Unit helpers. Physical quantities are carried as doubles in SI units
// (watts, joules, seconds, hertz); these helpers make call sites read in the
// units the paper uses (kHz from sysfs, GHz in tables, kJ in Table 2).
#pragma once

#include <cstdint>

namespace eco {

// Frequencies in this code base are stored in kilohertz, matching Linux's
// cpufreq sysfs interface and the paper's JSON configuration format
// ("frequency": 2200000).
using KiloHertz = std::uint64_t;

constexpr KiloHertz kHz(std::uint64_t v) { return v; }
constexpr double KiloHertzToGHz(KiloHertz f) {
  return static_cast<double>(f) / 1.0e6;
}
constexpr KiloHertz GHzToKiloHertz(double ghz) {
  return static_cast<KiloHertz>(ghz * 1.0e6 + 0.5);
}

constexpr double JoulesToKiloJoules(double j) { return j / 1000.0; }
constexpr double WattsToKiloWatts(double w) { return w / 1000.0; }

constexpr double BytesToGiB(double bytes) {
  return bytes / (1024.0 * 1024.0 * 1024.0);
}
constexpr std::uint64_t GiB(std::uint64_t n) {
  return n * 1024ull * 1024ull * 1024ull;
}

}  // namespace eco
