#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/telemetry/metrics.hpp"

namespace eco {
namespace {

// Set while a pool worker (any pool) is executing a chunk, so nested
// ParallelFor calls run serially instead of deadlocking on a full queue.
thread_local bool t_inside_worker = false;

// Process-global pool telemetry (all pools publish here; handles resolved
// once, updates are lock-free).
struct PoolMetrics {
  telemetry::Counter* parallel_calls;
  telemetry::Counter* serial_calls;
  telemetry::Counter* chunks;
  telemetry::Gauge* queue_depth;
  telemetry::Gauge* queue_depth_peak;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      auto& reg = telemetry::MetricsRegistry::Global();
      return PoolMetrics{
          reg.GetCounter("eco_pool_parallel_calls_total"),
          reg.GetCounter("eco_pool_serial_calls_total"),
          reg.GetCounter("eco_pool_chunks_total"),
          reg.GetGauge("eco_pool_queue_depth"),
          reg.GetGauge("eco_pool_queue_depth_peak"),
      };
    }();
    return m;
  }
};

std::uint64_t MixSeed(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

struct ThreadPool::Job {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::int64_t chunks = 0;
  const ChunkFn* fn = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::condition_variable finished;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = DefaultThreadCount();
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("ECO_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

std::int64_t ThreadPool::ChunkCount(std::int64_t n, std::int64_t grain) {
  if (n <= 0) return 0;
  if (grain <= 0) grain = kDefaultGrain;
  return (n + grain - 1) / grain;
}

Rng ThreadPool::ChunkRng(std::uint64_t seed, std::int64_t chunk) {
  return Rng(MixSeed(seed ^ MixSeed(static_cast<std::uint64_t>(chunk) + 1)));
}

// Claims chunks until none remain. Every chunk index is claimed by exactly
// one thread and counted in `done` whether it ran or was skipped after a
// failure, so `done` always converges to `chunks` and the caller's wait
// cannot hang.
void ThreadPool::RunChunks(Job& job) {
  const bool was_inside = t_inside_worker;
  t_inside_worker = true;
  while (true) {
    const std::int64_t chunk = job.next.fetch_add(1);
    if (chunk >= job.chunks) break;
    if (!job.failed.load(std::memory_order_acquire)) {
      const std::int64_t lo = job.begin + chunk * job.grain;
      const std::int64_t hi = std::min(lo + job.grain, job.end);
      try {
        (*job.fn)(chunk, lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.mutex);
        if (!job.error) job.error = std::current_exception();
        job.failed.store(true, std::memory_order_release);
      }
    }
    if (job.done.fetch_add(1) + 1 == job.chunks) {
      std::lock_guard<std::mutex> lock(job.mutex);
      job.finished.notify_all();
    }
  }
  t_inside_worker = was_inside;
}

void ThreadPool::ParallelForChunks(std::int64_t begin, std::int64_t end,
                                   std::int64_t grain, const ChunkFn& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (grain <= 0) grain = kDefaultGrain;
  const std::int64_t chunks = ChunkCount(n, grain);

  // Serial paths: single chunk, no workers, or nested inside a pool worker.
  // Chunk indices match the parallel decomposition, so per-chunk RNG streams
  // and reduction order are identical.
  if (chunks == 1 || workers_.empty() || t_inside_worker) {
    const PoolMetrics& metrics = PoolMetrics::Get();
    metrics.serial_calls->Add(1);
    metrics.chunks->Add(static_cast<std::uint64_t>(chunks));
    for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
      const std::int64_t lo = begin + chunk * grain;
      const std::int64_t hi = std::min(lo + grain, end);
      fn(chunk, lo, hi);
    }
    return;
  }

  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.parallel_calls->Add(1);
  metrics.chunks->Add(static_cast<std::uint64_t>(chunks));

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->chunks = chunks;
  job->fn = &fn;

  // One queue entry per helper; late poppers see no chunks left and return.
  const std::int64_t helpers = std::min<std::int64_t>(
      static_cast<std::int64_t>(workers_.size()), chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::int64_t i = 0; i < helpers; ++i) queue_.push_back(job);
    const auto depth = static_cast<double>(queue_.size());
    metrics.queue_depth->Set(depth);
    metrics.queue_depth_peak->SetMax(depth);
  }
  wake_.notify_all();

  RunChunks(*job);

  std::unique_lock<std::mutex> lock(job->mutex);
  job->finished.wait(lock, [&] { return job->done.load() == job->chunks; });
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             std::int64_t grain, const RangeFn& fn) {
  ParallelForChunks(
      begin, end, grain,
      [&fn](std::int64_t, std::int64_t lo, std::int64_t hi) { fn(lo, hi); });
}

void ThreadPool::WorkerMain() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      PoolMetrics::Get().queue_depth->Set(static_cast<double>(queue_.size()));
    }
    RunChunks(*job);
  }
}

}  // namespace eco
