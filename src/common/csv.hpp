// CSV reader / writer.
//
// Chronus's paper implementation ships a CSV Repository next to the SQLite
// one; this codec backs our CsvRepository. It supports RFC-4180 quoting
// (commas / quotes / newlines inside quoted fields) — enough to round-trip
// arbitrary benchmark metadata.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"

namespace eco {

using CsvRow = std::vector<std::string>;

// Serialises one row, quoting fields that need it.
std::string CsvEncodeRow(const CsvRow& row);
// Parses a full document (possibly with quoted embedded newlines).
Result<std::vector<CsvRow>> CsvParse(const std::string& text);

// Convenience file helpers.
Status CsvWriteFile(const std::string& path, const std::vector<CsvRow>& rows);
Result<std::vector<CsvRow>> CsvReadFile(const std::string& path);

}  // namespace eco
