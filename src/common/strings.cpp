#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eco {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view text, long long& out) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) return false;
  const char* begin = trimmed.data();
  const char* end = begin + trimmed.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(std::string_view text, double& out) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) return false;
  char* end = nullptr;
  out = std::strtod(trimmed.c_str(), &end);
  return end == trimmed.c_str() + trimmed.size() && std::isfinite(out);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatHms(double seconds) {
  const long long total = static_cast<long long>(std::llround(seconds));
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld", h, m, s);
  return buf;
}

}  // namespace eco
