// Lightweight status / result types used across the library.
//
// The library avoids exceptions on hot simulation paths (per the C++ Core
// Guidelines advice to use error codes at module boundaries where callers are
// expected to branch on failure). `Status` carries an error message; `Result<T>`
// is a `Status` plus a value on success.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace eco {

class Status {
 public:
  Status() = default;
  static Status Ok() { return Status{}; }
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  static Result<T> Error(std::string message) {
    return Result<T>(Status::Error(std::move(message)));
  }

  [[nodiscard]] bool ok() const { return status_.ok() && value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] const std::string& message() const { return status_.message(); }

  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

  [[nodiscard]] const T& operator*() const& { return *value_; }
  [[nodiscard]] T& operator*() & { return *value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }
  [[nodiscard]] T* operator->() { return &*value_; }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace eco
