#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eco {
namespace {

const Json& NullJson() {
  static const Json null;
  return null;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipWs();
    Json value;
    if (!ParseValue(value)) return Result<Json>::Error(error_);
    SkipWs();
    if (pos_ != text_.size()) {
      return Result<Json>::Error("json: trailing characters at offset " +
                                 std::to_string(pos_));
    }
    return value;
  }

 private:
  bool Fail(const std::string& message) {
    error_ = "json: " + message + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char& c) {
    if (pos_ >= text_.size()) return false;
    c = text_[pos_];
    return true;
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    std::size_t i = 0;
    while (literal[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != literal[i]) {
        return false;
      }
      ++i;
    }
    pos_ += i;
    return true;
  }

  bool ParseValue(Json& out) {
    SkipWs();
    char c = 0;
    if (!Peek(c)) return Fail("unexpected end of input");
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        if (!ParseString(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case 't':
        if (!ConsumeLiteral("true")) return Fail("bad literal");
        out = Json(true);
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("bad literal");
        out = Json(false);
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("bad literal");
        out = Json();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Json& out) {
    if (!Consume('{')) return Fail("expected '{'");
    JsonObject obj;
    SkipWs();
    if (Consume('}')) {
      out = Json(std::move(obj));
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      Json value;
      if (!ParseValue(value)) return false;
      obj[key] = std::move(value);
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}'");
    }
    out = Json(std::move(obj));
    return true;
  }

  bool ParseArray(Json& out) {
    if (!Consume('[')) return Fail("expected '['");
    JsonArray arr;
    SkipWs();
    if (Consume(']')) {
      out = Json(std::move(arr));
      return true;
    }
    while (true) {
      Json value;
      if (!ParseValue(value)) return false;
      arr.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']'");
    }
    out = Json(std::move(arr));
    return true;
  }

  bool ParseString(std::string& out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
      any = true;
    }
    if (!any) return Fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return Fail("bad number '" + token + "'");
    }
    out = Json(v);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(std::string& out, double v) {
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) return NullJson();
  const auto it = object_.find(key);
  return it == object_.end() ? NullJson() : it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        AppendEscaped(out, key);
        out += indent > 0 ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace eco
