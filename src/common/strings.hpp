// Small string utilities shared by the CSV/JSON codecs, the CLI, and the
// virtual procfs formatters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace eco {

std::vector<std::string> Split(std::string_view text, char sep);
// Split on whitespace runs, dropping empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view text);
std::string Trim(std::string_view text);
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string ToLower(std::string_view text);
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Parsers returning false on malformed input rather than throwing.
bool ParseInt64(std::string_view text, long long& out);
bool ParseDouble(std::string_view text, double& out);

// printf-style double formatting helpers used by the report tables.
std::string FormatDouble(double v, int precision);
// Formats seconds as H:MM:SS (Table 2's "0:18:47" runtime format).
std::string FormatHms(double seconds);

}  // namespace eco
