#include "common/rng.hpp"

#include <cmath>

namespace eco {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Lemire-style rejection-free-enough bounded draw; bias is negligible for
  // the bounds used here (config counts, population sizes).
  return NextU64() % bound;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

int Rng::UniformInt(int lo, int hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<int>(
                  NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool Rng::Chance(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace eco
