// Structured 3-D grid geometry for the miniature HPCG solver.
//
// HPCG's operator is the 27-point finite-difference Laplacian on a regular
// grid: diagonal 26, all neighbours -1, with rows truncated at the boundary
// (so the matrix stays symmetric positive definite). The implementation here
// is matrix-free: the stencil kernels enumerate neighbours from the geometry
// instead of storing 27 values per row.
#pragma once

#include <cstdint>

namespace eco::hpcg {

struct Geometry {
  int nx = 16;
  int ny = 16;
  int nz = 16;

  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(nx) * ny * nz;
  }

  [[nodiscard]] std::int64_t Index(int ix, int iy, int iz) const {
    return (static_cast<std::int64_t>(iz) * ny + iy) * nx + ix;
  }

  [[nodiscard]] bool Inside(int ix, int iy, int iz) const {
    return ix >= 0 && ix < nx && iy >= 0 && iy < ny && iz >= 0 && iz < nz;
  }

  // Stored nonzeros of the boundary-truncated 27-point operator, closed form.
  // Row (ix,iy,iz) stores extent(ix,nx)*extent(iy,ny)*extent(iz,nz) entries
  // (diagonal included), where extent(i,n) = |{-1,0,1} ∩ valid steps| — so the
  // grid total factorises per axis: sum_i extent(i,n) = 3n-2 for every n >= 1.
  [[nodiscard]] std::uint64_t NonZeros() const {
    const auto axis = [](int n) {
      return static_cast<std::uint64_t>(3 * static_cast<std::int64_t>(n) - 2);
    };
    return axis(nx) * axis(ny) * axis(nz);
  }

  // True when every dimension is even and >= 4, i.e. one more multigrid
  // coarsening level is possible.
  [[nodiscard]] bool Coarsenable() const {
    return nx % 2 == 0 && ny % 2 == 0 && nz % 2 == 0 && nx >= 4 && ny >= 4 &&
           nz >= 4;
  }

  [[nodiscard]] Geometry Coarse() const { return {nx / 2, ny / 2, nz / 2}; }
};

}  // namespace eco::hpcg
