// End-to-end mini-HPCG benchmark driver, following the reference benchmark's
// phases: problem setup, validation (operator symmetry, preconditioner
// effectiveness), then repeated timed 50-iteration CG sets, and a final
// GFLOP/s rating.
#pragma once

#include <cstdint>
#include <string>

#include "hpcg/cg.hpp"
#include "hpcg/geometry.hpp"

namespace eco::hpcg {

struct BenchmarkOptions {
  Geometry geometry{16, 16, 16};
  int iterations_per_set = 50;
  int sets = 1;
  // Stop adding sets once this much wall time has elapsed (0 = run `sets`).
  double time_budget_seconds = 0.0;
};

struct BenchmarkReport {
  bool symmetry_ok = false;
  double symmetry_error = 0.0;
  // Iterations to reach 1e-6 relative residual, plain CG vs MG-preconditioned
  // CG (the preconditioner must pay for itself).
  int unpreconditioned_iterations = 0;
  int preconditioned_iterations = 0;
  int sets_run = 0;
  std::uint64_t total_flops = 0;
  double total_seconds = 0.0;
  double gflops = 0.0;
  double final_residual = 0.0;

  [[nodiscard]] std::string Summary() const;
};

// Runs the full benchmark. Deterministic given the options.
BenchmarkReport RunBenchmark(const BenchmarkOptions& options);

// Operator symmetry check: |x'Ay - y'Ax| / (|x||y|) for pseudo-random x, y.
double SymmetryError(const Geometry& geo);

}  // namespace eco::hpcg
