// Rank-decomposed HPCG: the distributed-memory structure of the reference
// benchmark, executed in-process (no MPI on this machine; DESIGN.md records
// the substitution).
//
// The global grid is split over a px × py × pz processor grid; every rank
// owns a local block and a one-cell halo. Each CG iteration does what the
// MPI code does:
//
//   halo exchange  ->  local 27-point SpMV
//   local dots     ->  allreduce (here: a straight sum over ranks)
//   preconditioner ->  rank-local SymGS on the current halo — the "simple
//                      additive Schwarz, symmetric Gauss-Seidel" the paper
//                      quotes from the HPCG spec (§3.2): each rank smooths
//                      its own block; coupling only flows through the halo.
//
// Properties exercised by the tests: unpreconditioned distributed CG is
// bitwise-equivalent to serial CG on the same global problem (halo exchange
// makes SpMV exact); the Schwarz preconditioner converges, matches serial
// SymGS exactly at 1 rank, and degrades gracefully with more ranks.
#pragma once

#include <cstdint>
#include <vector>

#include "hpcg/geometry.hpp"
#include "hpcg/vector_ops.hpp"

namespace eco::hpcg {

// A vector distributed over ranks: per-rank storage includes the halo
// (local dims + 2 in every direction); owned cells live at offset 1.
class DistributedGrid {
 public:
  // Global problem of (local.nx·px, local.ny·py, local.nz·pz), every rank
  // owning an identical `local` block.
  DistributedGrid(const Geometry& local, int px, int py, int pz);

  [[nodiscard]] int ranks() const { return px_ * py_ * pz_; }
  [[nodiscard]] const Geometry& local() const { return local_; }
  [[nodiscard]] Geometry global() const {
    return {local_.nx * px_, local_.ny * py_, local_.nz * pz_};
  }
  // Storage geometry of one rank (local + halo).
  [[nodiscard]] Geometry padded() const {
    return {local_.nx + 2, local_.ny + 2, local_.nz + 2};
  }

  // Fresh distributed vector (all ranks, halos included, zeroed).
  [[nodiscard]] std::vector<Vec> MakeVector() const;

  // Scatters a global-geometry vector into owned cells / gathers it back.
  void Scatter(const Vec& global, std::vector<Vec>& dist) const;
  void Gather(const std::vector<Vec>& dist, Vec& global) const;

  // Fills every rank's halo from the owning neighbours (26 directions).
  // Cells outside the global domain are set to 0 — which matches the
  // serial stencil's boundary truncation.
  void ExchangeHalo(std::vector<Vec>& dist) const;

  // y = A x with a fresh halo exchange (x's halos are updated).
  void SpMV(std::vector<Vec>& x, std::vector<Vec>& y) const;

  // Additive-Schwarz smoother: one rank-local symmetric Gauss–Seidel sweep
  // per rank using the current halo of r (exchanged first), updating z.
  void SchwarzSymGS(std::vector<Vec>& r, std::vector<Vec>& z) const;

  // Allreduce-style dot product over owned cells only.
  [[nodiscard]] double Dot(const std::vector<Vec>& a,
                           const std::vector<Vec>& b) const;
  // w = alpha·x + beta·y over owned cells (halos left stale).
  void Waxpby(double alpha, const std::vector<Vec>& x, double beta,
              const std::vector<Vec>& y, std::vector<Vec>& w) const;

 private:
  // Rank coordinates / ids.
  [[nodiscard]] int RankId(int rx, int ry, int rz) const {
    return (rz * py_ + ry) * px_ + rx;
  }

  Geometry local_;
  int px_, py_, pz_;
};

struct DistributedCgResult {
  int iterations = 0;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  bool converged = false;
};

// Preconditioned CG on the distributed problem. `b` and `x` are
// global-geometry vectors (scattered/gathered internally).
DistributedCgResult DistributedCgSolve(const DistributedGrid& grid,
                                       const Vec& b, Vec& x,
                                       int max_iterations, double tolerance,
                                       bool preconditioned);

}  // namespace eco::hpcg
