// Runtime ISA dispatch for the HPCG kernel core.
//
// One binary carries four implementations (tiers) of the lane-blocked inner
// loops — scalar, SSE2, AVX2 and AVX-512 — each compiled in its own TU with
// the matching -m flags (src/hpcg/CMakeLists.txt), selected at runtime from
// a CPUID-probed dispatch table of function pointers.
//
// Tier selection, in priority order:
//   1. ForceIsaTier() — tests and benches pin a tier programmatically;
//   2. the ECO_FORCE_ISA environment variable
//      (scalar | sse2 | avx2 | avx512 | native);
//   3. the default: kSse2.
// A request for a tier the CPU (or the build) cannot run clamps down to the
// best supported tier, so `ECO_FORCE_ISA=avx512 ctest` passes on any runner.
//
// Determinism contract (DESIGN.md, "Runtime SIMD dispatch & calibration
// loop"):
//   - scalar and sse2 accumulate every tap in the canonical dz→dy→dx order
//     and are bitwise identical to the `ref::` oracle for every kernel.
//     SSE2 stays the *default* so existing goldens never move.
//   - avx2 and avx512 reassociate: the SpMV family folds the 27 taps as
//     sliding-window column sums, the Gauss–Seidel relax folds its taps via
//     a fixed hsum tree and multiplies by a precomputed reciprocal, and the
//     dot reductions keep per-lane partials. The association is *fixed* per
//     tier, so results are bitwise run-to-run deterministic, pool-size
//     invariant, and fused==unfused against that tier's own goldens
//     (verified per tier in tests/test_hpcg_kernels.cpp) — but not bitwise
//     equal to ref::, only within the analytic 64·eps·Σ|terms| bound.
#pragma once

#include <cstdint>
#include <string_view>

#include "hpcg/geometry.hpp"
#include "hpcg/vector_ops.hpp"

namespace eco::hpcg {

// Tiers in strictly increasing capability order; comparisons rely on it.
enum class IsaTier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };
inline constexpr int kIsaTierCount = 4;

// The default: the widest tier whose results are bitwise identical to the
// `ref::` oracle on every kernel (wider tiers reassociate reductions).
inline constexpr IsaTier kDefaultIsaTier = IsaTier::kSse2;

// "scalar" / "sse2" / "avx2" / "avx512" — the spelling ECO_FORCE_ISA takes
// and the BENCH_*.json artifacts record.
const char* IsaTierName(IsaTier tier);

// Parses an ECO_FORCE_ISA spelling ("native" maps to BestSupportedIsaTier).
// Returns false (out untouched) on an unknown name.
bool ParseIsaTier(std::string_view name, IsaTier* out);

// Whether this process can run the tier: the CPU advertises the ISA and the
// binary was built with that tier's TU enabled. scalar and sse2 are always
// supported (their code is plain C++ / generic two-wide vectors).
bool IsaTierSupported(IsaTier tier);

// The widest supported tier on this machine.
IsaTier BestSupportedIsaTier();

// The tier the kernels currently dispatch to. Resolved once (force > env >
// default) and cached; thread-safe.
IsaTier ActiveIsaTier();

// Whether the active tier was pinned explicitly (ECO_FORCE_ISA in the
// environment, or a ForceIsaTier call) rather than falling back to
// kDefaultIsaTier. Dispatch tables whose tiers are bitwise identical at any
// width (the ml forest engine) upgrade to BestSupportedIsaTier when the
// tier is NOT pinned; the HPCG kernels never do (wider tiers reassociate
// reductions, so their default stays kDefaultIsaTier).
bool IsaTierPinned();

// Pins the dispatch tier (clamped down to the best supported tier when the
// request cannot run) and returns the tier actually in force. Thread-safe,
// but not synchronized against kernels already in flight — switch tiers
// between kernel invocations, not during.
IsaTier ForceIsaTier(IsaTier tier);

// Plane-blocked cache tiling: the z-grain pooled kernels hand ParallelFor,
// sized so one task's slab of planes (plus its two halo planes) streams
// through an L2-ish working set instead of re-fetching halos plane by plane
// (traffic ratio (S+2)/S per S-plane slab). A function of the geometry
// alone — never of the pool size — and the tiled kernels are elementwise,
// so any slab partition is bitwise identical to serial.
std::int64_t ZSlabGrain(const Geometry& geo);

namespace detail {

// The per-tier entry points the public kernels (stencil.cpp, vector_ops.cpp)
// dispatch through. Plane/range granularity mirrors the pooled tiling: the
// pool partitions, the tier computes.
struct KernelOps {
  // y = A x over z-planes [z_lo, z_hi).
  void (*spmv_planes)(const Geometry& geo, const Vec& x, Vec& y, int z_lo,
                      int z_hi);
  // out = r - A x over z-planes [z_lo, z_hi).
  void (*spmv_residual_planes)(const Geometry& geo, const Vec& x, const Vec& r,
                               Vec& out, int z_lo, int z_hi);
  // y = A x over flat range [lo, hi), returning the x'y partial with the
  // tier's DotRange association over the same range.
  double (*spmv_dot_range)(const Geometry& geo, const Vec& x, Vec& y,
                           std::int64_t lo, std::int64_t hi);
  // One parity color of the multicolor smoother over planes [z_lo, z_hi).
  void (*relax_color_planes)(const Geometry& geo, const Vec& r, Vec& z, int cx,
                             int cy, int cz, int z_lo, int z_hi);
  // Full lexicographic symmetric Gauss–Seidel sweep (serial by contract).
  void (*symgs)(const Geometry& geo, const Vec& r, Vec& z);
  // BLAS-1 ranges; Dot/FusedWaxpbyDot keep the kReduceGrain chunk structure
  // in the caller, the tier supplies the in-chunk association.
  double (*dot_range)(const Vec& x, const Vec& y, std::int64_t lo,
                      std::int64_t hi);
  void (*waxpby_range)(double alpha, const Vec& x, double beta, const Vec& y,
                       Vec& w, std::int64_t lo, std::int64_t hi);
  double (*waxpby_dot_range)(double alpha, const Vec& x, double beta,
                             const Vec& y, Vec& w, std::int64_t lo,
                             std::int64_t hi);
};

// The table for the active tier (one acquire-ish atomic read + array index).
const KernelOps& ActiveOps();

// Per-tier tables, defined in the stencil_tier_*.cpp TUs. A TU built
// without its ISA (non-x86 host) returns nullptr and the tier reports
// unsupported.
const KernelOps* GetKernelOps_scalar();
const KernelOps* GetKernelOps_sse2();
const KernelOps* GetKernelOps_avx2();
const KernelOps* GetKernelOps_avx512();

}  // namespace detail
}  // namespace eco::hpcg
