// Public BLAS-1 kernels: telemetry scope + kReduceGrain chunking + runtime
// ISA dispatch. The per-tier range loops live in stencil_tiers.inc; the
// chunk decomposition here is a function of n alone, so every tier is
// pool-size invariant by construction.
#include "hpcg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "hpcg/dispatch.hpp"
#include "hpcg/kernel_telemetry.hpp"

namespace eco::hpcg {

double Dot(const Vec& x, const Vec& y, ThreadPool* pool) {
  KernelScope scope(Kernel::kDot, DotFlops(x.size()));
  const detail::KernelOps& ops = detail::ActiveOps();
  const auto n = static_cast<std::int64_t>(x.size());
  const std::int64_t chunks = ThreadPool::ChunkCount(n, kReduceGrain);
  if (chunks <= 1) return ops.dot_range(x, y, 0, n);

  // Per-chunk partials combined in chunk order: the association is fixed by
  // (n, kReduceGrain), so serial and pooled sums are bit-identical.
  std::vector<double> partials(static_cast<std::size_t>(chunks), 0.0);
  if (pool == nullptr) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = c * kReduceGrain;
      const std::int64_t hi = std::min(lo + kReduceGrain, n);
      partials[static_cast<std::size_t>(c)] = ops.dot_range(x, y, lo, hi);
    }
  } else {
    pool->ParallelForChunks(
        0, n, kReduceGrain,
        [&](std::int64_t chunk, std::int64_t lo, std::int64_t hi) {
          partials[static_cast<std::size_t>(chunk)] =
              ops.dot_range(x, y, lo, hi);
        });
  }
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

void Waxpby(double alpha, const Vec& x, double beta, const Vec& y, Vec& w,
            ThreadPool* pool) {
  KernelScope scope(Kernel::kWaxpby, WaxpbyFlops(x.size()));
  const detail::KernelOps& ops = detail::ActiveOps();
  const auto n = static_cast<std::int64_t>(x.size());
  if (pool == nullptr || n <= kReduceGrain) {
    ops.waxpby_range(alpha, x, beta, y, w, 0, n);
    return;
  }
  pool->ParallelFor(0, n, kReduceGrain,
                    [&](std::int64_t lo, std::int64_t hi) {
                      ops.waxpby_range(alpha, x, beta, y, w, lo, hi);
                    });
}

double FusedWaxpbyDot(double alpha, const Vec& x, double beta, const Vec& y,
                      Vec& w, ThreadPool* pool) {
  KernelScope scope(Kernel::kWaxpbyDot,
                    WaxpbyFlops(x.size()) + DotFlops(x.size()));
  const detail::KernelOps& ops = detail::ActiveOps();
  const auto n = static_cast<std::int64_t>(x.size());
  const std::int64_t chunks = ThreadPool::ChunkCount(n, kReduceGrain);
  if (chunks <= 1) return ops.waxpby_dot_range(alpha, x, beta, y, w, 0, n);

  std::vector<double> partials(static_cast<std::size_t>(chunks), 0.0);
  if (pool == nullptr) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = c * kReduceGrain;
      const std::int64_t hi = std::min(lo + kReduceGrain, n);
      partials[static_cast<std::size_t>(c)] =
          ops.waxpby_dot_range(alpha, x, beta, y, w, lo, hi);
    }
  } else {
    pool->ParallelForChunks(
        0, n, kReduceGrain,
        [&](std::int64_t chunk, std::int64_t lo, std::int64_t hi) {
          partials[static_cast<std::size_t>(chunk)] =
              ops.waxpby_dot_range(alpha, x, beta, y, w, lo, hi);
        });
  }
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

void Fill(Vec& x, double value) {
  for (auto& v : x) v = value;
}

double Norm2(const Vec& x, ThreadPool* pool) {
  return std::sqrt(Dot(x, x, pool));
}

}  // namespace eco::hpcg
