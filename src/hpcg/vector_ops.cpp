#include "hpcg/vector_ops.hpp"

#include <cmath>

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace eco::hpcg {

double Dot(const Vec& x, const Vec& y) {
  double sum = 0.0;
  const std::size_t n = x.size();
#if defined(_OPENMP)
#pragma omp parallel for reduction(+ : sum) schedule(static)
#endif
  for (std::size_t i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

void Waxpby(double alpha, const Vec& x, double beta, const Vec& y, Vec& w) {
  const std::size_t n = x.size();
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (std::size_t i = 0; i < n; ++i) w[i] = alpha * x[i] + beta * y[i];
}

void Fill(Vec& x, double value) {
  for (auto& v : x) v = value;
}

double Norm2(const Vec& x) { return std::sqrt(Dot(x, x)); }

}  // namespace eco::hpcg
