#include "hpcg/vector_ops.hpp"

#include <cmath>

#include "hpcg/kernel_telemetry.hpp"

namespace eco::hpcg {
namespace {

double DotRange(const Vec& x, const Vec& y, std::int64_t lo, std::int64_t hi) {
  double sum = 0.0;
  for (std::int64_t i = lo; i < hi; ++i) {
    sum += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
  }
  return sum;
}

// One chunk of the fused waxpby+dot: writes w over [lo, hi) and returns the
// chunk's w'w partial. The statement shapes match Waxpby's update and
// DotRange's accumulate exactly, so the stored vector and the partial are
// bitwise what the unfused pair produces.
double WaxpbyDotRange(double alpha, const Vec& x, double beta, const Vec& y,
                      Vec& w, std::int64_t lo, std::int64_t hi) {
  double sum = 0.0;
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const double wv = alpha * x[u] + beta * y[u];
    w[u] = wv;
    sum += wv * wv;
  }
  return sum;
}

}  // namespace

double Dot(const Vec& x, const Vec& y, ThreadPool* pool) {
  KernelScope scope(Kernel::kDot, DotFlops(x.size()));
  const auto n = static_cast<std::int64_t>(x.size());
  const std::int64_t chunks = ThreadPool::ChunkCount(n, kReduceGrain);
  if (chunks <= 1) return DotRange(x, y, 0, n);

  // Per-chunk partials combined in chunk order: the association is fixed by
  // (n, kReduceGrain), so serial and pooled sums are bit-identical.
  std::vector<double> partials(static_cast<std::size_t>(chunks), 0.0);
  if (pool == nullptr) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = c * kReduceGrain;
      const std::int64_t hi = std::min(lo + kReduceGrain, n);
      partials[static_cast<std::size_t>(c)] = DotRange(x, y, lo, hi);
    }
  } else {
    pool->ParallelForChunks(
        0, n, kReduceGrain,
        [&](std::int64_t chunk, std::int64_t lo, std::int64_t hi) {
          partials[static_cast<std::size_t>(chunk)] = DotRange(x, y, lo, hi);
        });
  }
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

void Waxpby(double alpha, const Vec& x, double beta, const Vec& y, Vec& w,
            ThreadPool* pool) {
  KernelScope scope(Kernel::kWaxpby, WaxpbyFlops(x.size()));
  const auto n = static_cast<std::int64_t>(x.size());
  const auto body = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto u = static_cast<std::size_t>(i);
      w[u] = alpha * x[u] + beta * y[u];
    }
  };
  if (pool == nullptr || n <= kReduceGrain) {
    body(0, n);
    return;
  }
  pool->ParallelFor(0, n, kReduceGrain, body);
}

double FusedWaxpbyDot(double alpha, const Vec& x, double beta, const Vec& y,
                      Vec& w, ThreadPool* pool) {
  KernelScope scope(Kernel::kWaxpbyDot,
                    WaxpbyFlops(x.size()) + DotFlops(x.size()));
  const auto n = static_cast<std::int64_t>(x.size());
  const std::int64_t chunks = ThreadPool::ChunkCount(n, kReduceGrain);
  if (chunks <= 1) return WaxpbyDotRange(alpha, x, beta, y, w, 0, n);

  std::vector<double> partials(static_cast<std::size_t>(chunks), 0.0);
  if (pool == nullptr) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = c * kReduceGrain;
      const std::int64_t hi = std::min(lo + kReduceGrain, n);
      partials[static_cast<std::size_t>(c)] =
          WaxpbyDotRange(alpha, x, beta, y, w, lo, hi);
    }
  } else {
    pool->ParallelForChunks(
        0, n, kReduceGrain,
        [&](std::int64_t chunk, std::int64_t lo, std::int64_t hi) {
          partials[static_cast<std::size_t>(chunk)] =
              WaxpbyDotRange(alpha, x, beta, y, w, lo, hi);
        });
  }
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

void Fill(Vec& x, double value) {
  for (auto& v : x) v = value;
}

double Norm2(const Vec& x, ThreadPool* pool) {
  return std::sqrt(Dot(x, x, pool));
}

}  // namespace eco::hpcg
