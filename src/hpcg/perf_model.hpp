// Analytic HPCG performance model.
//
// The paper benchmarks real 20-minute HPCG runs per configuration; the
// simulator needs the same response surface in microseconds. The model is a
// roofline-style closed form fitted to the paper's Tables 4-6:
//
//   GFLOPS(n, f, ht) = A · n^core_exp · f_ghz^eps(n) · h(n, ht)
//
//   eps(n) = eps_floor + (1 - eps_floor) · exp(-(n-1)/eps_decay)
//
// `eps(n)` is the *frequency elasticity*: ~1 at one core (compute bound — a
// faster clock converts directly into FLOPS) and ~0.26 at 32 cores (memory
// bound — HPCG saturates the memory channels and extra clock mostly stalls).
// This single mechanism reproduces the paper's crossover: below ~10 cores the
// highest frequency wins GFLOPS/W because idle power dominates ("race to
// idle"); from ~12 cores up, 2.2 GHz wins; at 32 cores the paper's best
// configuration (32 c @ 2.2 GHz, no HT) emerges.
//
// h(n, ht) is the hyper-threading factor: a small gain at low core counts
// (the second hardware thread hides memory latency) decaying into a small
// loss at high counts (threads share L1/L2 and the channels are already
// saturated) — the paper's observations (2) and (3) in §5.2.1.
//
// HPCG is run in weak scaling: the problem (default 104³) is the *local* grid
// per rank, so total work scales with the rank count — that is why 32 ranks
// of a 104³ problem need ~32 GB of the node's 256 GB (12.5 %), matching §5.2.
//
// Calibration loop: the paper-fitted defaults stay the defaults, but the
// model can be refitted from a measured kernel roofline
// (BENCH_p4_kernel_roofline.json, produced by bench_p4_kernel_roofline) via
// KernelCalibration + CalibrateFrom(), so node_sim durations and Chronus
// GFLOPS/W rankings derive from the kernels this repo actually runs instead
// of the paper's hardware. Set ECO_PERF_CALIBRATION=<artifact path> to apply
// it to every simulated node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/units.hpp"
#include "hw/cpu_spec.hpp"

namespace eco::hpcg {

struct HpcgProblem {
  int nx = 104;
  int ny = 104;
  int nz = 104;

  [[nodiscard]] std::uint64_t LocalPoints() const {
    return static_cast<std::uint64_t>(nx) * ny * nz;
  }
  // Approximate working-set bytes per grid point (matrix + MG hierarchy +
  // vectors), calibrated so 32 ranks × 104³ ≈ 32 GB as the paper reports.
  [[nodiscard]] std::uint64_t LocalBytes() const { return LocalPoints() * 888; }
  // FLOPs per point per CG iteration (SpMV + MG/SymGS + vector ops).
  static constexpr double kFlopsPerPointPerIteration = 308.0;

  static HpcgProblem Official() { return HpcgProblem{}; }
};

struct PerfModelParams {
  double reference_gflops = 9.35;  // 32 c @ 2.5 GHz, no HT (paper Figure 1)
  int reference_cores = 32;
  double reference_ghz = 2.5;
  double core_exponent = 0.90;
  double eps_floor = 0.26;
  double eps_decay = 8.0;
  double ht_gain = 0.030;     // low-core-count HT benefit
  double ht_gain_decay = 8.0;
  double ht_penalty = 0.005;  // HT loss at full core count
  // Per-core compute capability (GFLOPS per GHz) used for the utilization /
  // headroom estimate that drives power-trace variability.
  double compute_gflops_per_ghz = 0.55;
  // Power-trace modulation: above the V/f knee the package dips in and out
  // of boost residency as stall density fluctuates between CG phases, so the
  // power trace is visibly less stable at 2.5 GHz than pinned at 2.2 GHz
  // (paper Figure 15).
  double phase_amp_base = 0.02;
  double phase_amp_per_ghz_above_knee = 0.30;
  double knee_ghz = 2.2;
  double phase_period_s = 45.0;
  // FLOPs per grid point per CG iteration. Defaults to the official HPCG
  // accounting; calibration keeps it in the params so TotalFlopsFor /
  // IterationsForDuration stay consistent with whatever fit is in force.
  double flops_per_point = HpcgProblem::kFlopsPerPointPerIteration;

  static PerfModelParams Epyc7502P() { return PerfModelParams{}; }
};

// A measured kernel roofline, distilled from a BENCH_p4_kernel_roofline
// artifact into exactly what CalibrateFrom() needs:
//   - composite whole-iteration GFLOPS per measured worker count (the
//     SpMV/SymGS/BLAS-1 rates combined as a flop-share-weighted harmonic
//     mean, i.e. time-weighted over one CG iteration);
//   - the streaming bandwidth the BLAS-1 kernels achieved and the best SpMV
//     rate across ISA tiers, which together locate the machine-balance
//     point the elasticity floor is derived from.
struct KernelCalibration {
  struct Point {
    int cores = 0;
    double gflops = 0.0;
  };
  std::vector<Point> points;           // sorted by cores, ascending
  double stream_bandwidth_gbs = 0.0;   // best of dot/waxpby × 8 B/flop
  double peak_gflops = 0.0;            // best SpMV over every measured tier
  double iteration_bytes_per_flop = 0.0;  // flop-share-weighted B/flop
  std::string isa_tier;                // tier the unsuffixed rows ran under
  std::string source;                  // artifact path ("" when from JSON)

  // Distils a parsed artifact body ({"bench": ..., "metrics": {...}}).
  // Fails when the required spmv/symgs keys are missing or non-positive.
  static Result<KernelCalibration> FromArtifact(const Json& artifact);
  // Reads and parses `path`, then distils it.
  static Result<KernelCalibration> FromFile(const std::string& path);
};

class HpcgPerfModel {
 public:
  explicit HpcgPerfModel(PerfModelParams params = PerfModelParams::Epyc7502P());

  [[nodiscard]] const PerfModelParams& params() const { return params_; }

  // Sustained GFLOPS for `cores` ranks at frequency `f`, hyper-threading
  // on/off. `cores` is the number of physical cores used (the paper's
  // --ntasks); HT controls threads-per-core.
  [[nodiscard]] double Gflops(int cores, KiloHertz f, bool ht) const;

  // Frequency elasticity at this core count (exposed for tests/ablations).
  [[nodiscard]] double FrequencyElasticity(int cores) const;

  // Mean utilization fed to the power model (1.0: stalled cores still burn
  // the stall fraction; the dynamic remainder tracks issue density).
  [[nodiscard]] double MeanUtilization(int cores, KiloHertz f, bool ht) const;

  // Time-varying utilization for power traces: mean utilization modulated by
  // the CG phase cycle. Deterministic in `t`.
  [[nodiscard]] double UtilizationAt(double t_seconds, int cores, KiloHertz f,
                                     bool ht) const;

  // Total FLOPs of a weak-scaled run: `cores` ranks × local problem ×
  // `iterations` CG iterations, at the official HPCG flop accounting.
  [[nodiscard]] static double TotalFlops(const HpcgProblem& problem, int cores,
                                         int iterations);
  // Same, at this model's (possibly calibrated) flops_per_point — the
  // counterpart IterationsForDuration sizes against, so duration × GFLOPS
  // round-trips exactly through the pair.
  [[nodiscard]] double TotalFlopsFor(const HpcgProblem& problem, int cores,
                                     int iterations) const;

  // Iteration count that makes the reference configuration run for
  // `target_seconds` (HPCG's "official run" sizing). The paper's runs target
  // ~20 minutes; Table 2 reports 18:29 measured at the standard config.
  [[nodiscard]] int IterationsForDuration(const HpcgProblem& problem,
                                          double target_seconds) const;

  // Refits the reference point (cores, GFLOPS), the core-scaling exponent
  // (log-log least squares over the measured points, clamped to [0.3, 1.0])
  // and the elasticity floor (compute fraction at the machine-balance
  // point) from a measured roofline. By construction the refitted model
  // reproduces the measured composite GFLOPS at the reference worker count
  // exactly. Returns false — leaving the model untouched — when the
  // calibration has no usable points.
  bool CalibrateFrom(const KernelCalibration& cal);

 private:
  PerfModelParams params_;
  double scale_;  // A in the formula, derived from the reference point
};

// When ECO_PERF_CALIBRATION names a readable roofline artifact, refits
// `model` from it; otherwise a no-op. The artifact is read and parsed once
// per process (an unreadable path warns once and is then ignored). NodeSim
// calls this at construction, so every simulated node — and therefore every
// Chronus sweep — runs on the measured kernels when the variable is set.
void ApplyEnvCalibration(HpcgPerfModel* model);

}  // namespace eco::hpcg
