#include "hpcg/multigrid.hpp"

namespace eco::hpcg {

Multigrid::Multigrid(const Geometry& fine, int max_levels, ThreadPool* pool,
                     bool colored_smoother)
    : pool_(pool), colored_smoother_(colored_smoother) {
  geos_.push_back(fine);
  while (static_cast<int>(geos_.size()) < max_levels &&
         geos_.back().Coarsenable()) {
    geos_.push_back(geos_.back().Coarse());
  }
  const auto n_levels = geos_.size();
  residual_.resize(n_levels);
  coarse_r_.resize(n_levels);
  coarse_z_.resize(n_levels);
  for (std::size_t level = 0; level < n_levels; ++level) {
    const auto n = static_cast<std::size_t>(geos_[level].size());
    residual_[level].assign(n, 0.0);
    if (level + 1 < n_levels) {
      const auto nc = static_cast<std::size_t>(geos_[level + 1].size());
      coarse_r_[level].assign(nc, 0.0);
      coarse_z_[level].assign(nc, 0.0);
    }
  }
}

void Multigrid::Apply(const Vec& r, Vec& z, std::uint64_t& flops) {
  Fill(z, 0.0);
  Cycle(0, r, z, flops);
}

void Multigrid::Cycle(int level, const Vec& r, Vec& z, std::uint64_t& flops) {
  const Geometry& geo = geos_[level];
  // Pre-smooth (z starts at zero on entry at every level).
  Smooth(geo, r, z);
  flops += SymGSFlops(geo);

  if (level + 1 < levels()) {
    // residual = r - A z, fused: no A z intermediate vector or extra sweep
    // (bitwise identical to SpMV + Waxpby(1, r, -1, az) — see stencil.hpp).
    SpMVResidual(geo, z, r, residual_[level], pool_);
    flops += SpMVFlops(geo) + WaxpbyFlops(residual_[level].size());

    Restrict(level, residual_[level], coarse_r_[level]);
    Fill(coarse_z_[level], 0.0);
    Cycle(level + 1, coarse_r_[level], coarse_z_[level], flops);
    Prolong(level, coarse_z_[level], z);

    // Post-smooth.
    Smooth(geo, r, z);
    flops += SymGSFlops(geo);
  }
}

void Multigrid::Smooth(const Geometry& geo, const Vec& r, Vec& z) const {
  if (colored_smoother_) {
    SymGSColored(geo, r, z, pool_);
  } else {
    SymGS(geo, r, z);
  }
}

void Multigrid::Restrict(int fine_level, const Vec& fine_residual,
                         Vec& coarse_r) const {
  const Geometry& fine = geos_[fine_level];
  const Geometry& coarse = geos_[fine_level + 1];
  for (int iz = 0; iz < coarse.nz; ++iz) {
    for (int iy = 0; iy < coarse.ny; ++iy) {
      for (int ix = 0; ix < coarse.nx; ++ix) {
        coarse_r[coarse.Index(ix, iy, iz)] =
            fine_residual[fine.Index(2 * ix, 2 * iy, 2 * iz)];
      }
    }
  }
}

void Multigrid::Prolong(int fine_level, const Vec& coarse_z, Vec& fine_z) const {
  const Geometry& fine = geos_[fine_level];
  const Geometry& coarse = geos_[fine_level + 1];
  for (int iz = 0; iz < coarse.nz; ++iz) {
    for (int iy = 0; iy < coarse.ny; ++iy) {
      for (int ix = 0; ix < coarse.nx; ++ix) {
        fine_z[fine.Index(2 * ix, 2 * iy, 2 * iz)] +=
            coarse_z[coarse.Index(ix, iy, iz)];
      }
    }
  }
}

std::uint64_t Multigrid::CycleFlops() const {
  std::uint64_t flops = 0;
  for (int level = 0; level < levels(); ++level) {
    const Geometry& geo = geos_[level];
    flops += SymGSFlops(geo);  // pre-smooth
    if (level + 1 < levels()) {
      flops += SpMVFlops(geo) +
               WaxpbyFlops(static_cast<std::size_t>(geo.size()));
      flops += SymGSFlops(geo);  // post-smooth
    }
  }
  return flops;
}

}  // namespace eco::hpcg
