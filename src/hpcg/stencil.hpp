// Matrix-free 27-point stencil kernels: SpMV and the symmetric Gauss–Seidel
// smoother HPCG uses as its preconditioner building block.
//
// Threading: kernels take an optional ThreadPool. SpMV is elementwise and
// bit-identical to the serial sweep at any pool size. The lexicographic
// SymGS is inherently sequential and always runs serially; SymGSColored is
// the parallelizable multicolor variant (8 colors — the 27-point stencil
// couples every neighbour within ±1 per axis, so 2×2×2 parity classes are
// the minimal independent sets). Within a color every update is independent,
// making the colored sweep deterministic at any pool size, but its update
// order differs from the lexicographic sweep, so seed-sensitive tests keep
// the serial SymGS.
#pragma once

#include <cstdint>

#include "common/thread_pool.hpp"
#include "hpcg/geometry.hpp"
#include "hpcg/vector_ops.hpp"

namespace eco::hpcg {

// Number of off-diagonal neighbours of point (ix,iy,iz) (≤ 26; fewer at the
// boundary). The diagonal entry is always 26.0 regardless, keeping the
// operator diagonally dominant, symmetric and positive definite.
int NeighbourCount(const Geometry& geo, int ix, int iy, int iz);

// y = A x. Pool-tiled over z-planes when `pool` is given; results are
// bit-identical to the serial sweep (disjoint elementwise writes).
void SpMV(const Geometry& geo, const Vec& x, Vec& y,
          ThreadPool* pool = nullptr);

// One symmetric Gauss–Seidel sweep (forward then backward) on A z = r,
// updating z in place. This is HPCG's smoother; it is inherently sequential
// within a sweep, exactly like the reference implementation's per-rank sweep.
void SymGS(const Geometry& geo, const Vec& r, Vec& z);

// Multicolor (red-black generalised to 8 colors) symmetric Gauss–Seidel:
// forward sweep over colors 0..7, backward over 7..0, points within a color
// updated in parallel. Deterministic for any pool size (serial included);
// numerically a different smoother ordering than SymGS, with the same
// per-sweep FLOP count and comparable smoothing quality.
void SymGSColored(const Geometry& geo, const Vec& r, Vec& z,
                  ThreadPool* pool = nullptr);

// FLOP costs (HPCG conventions: 2 flops per stored nonzero for SpMV, and
// forward+backward Gauss–Seidel costs twice an SpMV).
std::uint64_t SpMVFlops(const Geometry& geo);
std::uint64_t SymGSFlops(const Geometry& geo);
// Total stored nonzeros of the boundary-truncated operator.
std::uint64_t NonZeros(const Geometry& geo);

}  // namespace eco::hpcg
