// Matrix-free 27-point stencil kernels: SpMV and the symmetric Gauss–Seidel
// smoother HPCG uses as its preconditioner building block.
#pragma once

#include <cstdint>

#include "hpcg/geometry.hpp"
#include "hpcg/vector_ops.hpp"

namespace eco::hpcg {

// Number of off-diagonal neighbours of point (ix,iy,iz) (≤ 26; fewer at the
// boundary). The diagonal entry is always 26.0 regardless, keeping the
// operator diagonally dominant, symmetric and positive definite.
int NeighbourCount(const Geometry& geo, int ix, int iy, int iz);

// y = A x.
void SpMV(const Geometry& geo, const Vec& x, Vec& y);

// One symmetric Gauss–Seidel sweep (forward then backward) on A z = r,
// updating z in place. This is HPCG's smoother; it is inherently sequential
// within a sweep, exactly like the reference implementation's per-rank sweep.
void SymGS(const Geometry& geo, const Vec& r, Vec& z);

// FLOP costs (HPCG conventions: 2 flops per stored nonzero for SpMV, and
// forward+backward Gauss–Seidel costs twice an SpMV).
std::uint64_t SpMVFlops(const Geometry& geo);
std::uint64_t SymGSFlops(const Geometry& geo);
// Total stored nonzeros of the boundary-truncated operator.
std::uint64_t NonZeros(const Geometry& geo);

}  // namespace eco::hpcg
