// Matrix-free 27-point stencil kernels: SpMV and the symmetric Gauss–Seidel
// smoother HPCG uses as its preconditioner building block.
//
// Kernel microarchitecture (DESIGN.md, "Kernel microarchitecture"): every
// sweep is decomposed into interior and boundary work. Interior points
// (1 <= ix < nx-1, same for y and z) have all 26 neighbours, so the inner
// loops are branch-free walks over 26 precomputed plane/row offsets,
// accumulated in the exact dz→dy→dx order of the guarded reference path —
// results are bitwise identical to the reference kernels, which are kept in
// `ref::` as the oracle the optimized paths are tested against
// (tests/test_hpcg_kernels.cpp). Boundary shells take the guarded
// NeighbourSum path. Row bases are computed once per row (row-pointer
// arithmetic), never via per-point geo.Index calls.
//
// Threading: kernels take an optional ThreadPool. SpMV is elementwise and
// bit-identical to the serial sweep at any pool size. The lexicographic
// SymGS is inherently sequential and always runs serially; SymGSColored is
// the parallelizable multicolor variant (8 colors — the 27-point stencil
// couples every neighbour within ±1 per axis, so 2×2×2 parity classes are
// the minimal independent sets). Within a color every update is independent,
// making the colored sweep deterministic at any pool size, but its update
// order differs from the lexicographic sweep, so seed-sensitive tests keep
// the serial SymGS.
#pragma once

#include <cstdint>

#include "common/thread_pool.hpp"
#include "hpcg/geometry.hpp"
#include "hpcg/vector_ops.hpp"

namespace eco::hpcg {

// Unified pool-dispatch floor for the plane-tiled stencil kernels: with
// fewer than this many z-planes the pool dispatch overhead dominates the
// plane work and the kernels run the serial path even when a pool is given.
// (Historically SpMV used `nz < 2` and the colored sweep `nz <= 2`; results
// are bitwise pool-invariant either way, so one documented constant wins.)
inline constexpr int kMinPooledPlanes = 3;

// Number of off-diagonal neighbours of point (ix,iy,iz) (≤ 26; fewer at the
// boundary). The diagonal entry is always 26.0 regardless, keeping the
// operator diagonally dominant, symmetric and positive definite.
int NeighbourCount(const Geometry& geo, int ix, int iy, int iz);

// y = A x. Pool-tiled over z-planes when `pool` is given; results are
// bit-identical to the serial sweep (disjoint elementwise writes).
void SpMV(const Geometry& geo, const Vec& x, Vec& y,
          ThreadPool* pool = nullptr);

// Fused y = A x with *xdoty = x'y in the same pass (CG's p'Ap), saving one
// full re-read of y. The dot keeps the kReduceGrain chunk-ordered partial
// association of Dot(), and parallelism tiles over those same chunks — the
// result is bitwise identical to SpMV followed by Dot at any pool size.
void SpMVDot(const Geometry& geo, const Vec& x, Vec& y, double* xdoty,
             ThreadPool* pool = nullptr);

// Fused out = r - A x in one pass (the multigrid residual), eliminating the
// intermediate A x vector and its extra memory sweep. Bitwise identical to
// SpMV followed by Waxpby(1, r, -1, ax): the ±1 coefficients make every
// product exact, so the single subtraction rounds to the same double.
void SpMVResidual(const Geometry& geo, const Vec& x, const Vec& r, Vec& out,
                  ThreadPool* pool = nullptr);

// One symmetric Gauss–Seidel sweep (forward then backward) on A z = r,
// updating z in place. This is HPCG's smoother; it is inherently sequential
// within a sweep, exactly like the reference implementation's per-rank sweep.
void SymGS(const Geometry& geo, const Vec& r, Vec& z);

// Multicolor (red-black generalised to 8 colors) symmetric Gauss–Seidel:
// forward sweep over colors 0..7, backward over 7..0, points within a color
// updated in parallel. Deterministic for any pool size (serial included);
// numerically a different smoother ordering than SymGS, with the same
// per-sweep FLOP count and comparable smoothing quality.
void SymGSColored(const Geometry& geo, const Vec& r, Vec& z,
                  ThreadPool* pool = nullptr);

// FLOP costs (HPCG conventions: 2 flops per stored nonzero for SpMV, and
// forward+backward Gauss–Seidel costs twice an SpMV). O(1): closed-form
// extent products cached on Geometry (Geometry::NonZeros), pinned against
// the ref:: loop versions in tests.
std::uint64_t SpMVFlops(const Geometry& geo);
std::uint64_t SymGSFlops(const Geometry& geo);
// Total stored nonzeros of the boundary-truncated operator. O(1).
std::uint64_t NonZeros(const Geometry& geo);

// The pre-optimization kernels, verbatim: fully guarded NeighbourSum per
// point, per-point geo.Index arithmetic, O(grid) counter loops. Serial only.
// These are the bitwise oracle for the optimized paths — never used on a hot
// path, only by tests and the roofline bench's speedup baseline.
namespace ref {
void SpMV(const Geometry& geo, const Vec& x, Vec& y);
void SymGS(const Geometry& geo, const Vec& r, Vec& z);
void SymGSColored(const Geometry& geo, const Vec& r, Vec& z);
std::uint64_t NonZeros(const Geometry& geo);
}  // namespace ref

}  // namespace eco::hpcg
