#include "hpcg/benchmark.hpp"

#include <chrono>
#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "hpcg/stencil.hpp"

namespace eco::hpcg {

double SymmetryError(const Geometry& geo) {
  const auto n = static_cast<std::size_t>(geo.size());
  Rng rng(42);
  Vec x(n), y(n), ax(n), ay(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-1.0, 1.0);
    y[i] = rng.Uniform(-1.0, 1.0);
  }
  SpMV(geo, x, ax);
  SpMV(geo, y, ay);
  const double xtay = Dot(x, ay);
  const double ytax = Dot(y, ax);
  const double scale = Norm2(x) * Norm2(y);
  return std::abs(xtay - ytax) / (scale > 0.0 ? scale : 1.0);
}

BenchmarkReport RunBenchmark(const BenchmarkOptions& options) {
  using Clock = std::chrono::steady_clock;
  BenchmarkReport report;
  const Geometry& geo = options.geometry;
  const auto n = static_cast<std::size_t>(geo.size());

  report.symmetry_error = SymmetryError(geo);
  report.symmetry_ok = report.symmetry_error < 1e-10;

  // b = A * ones, so the exact solution is the ones vector (the reference
  // benchmark's construction).
  Vec ones(n, 1.0);
  Vec b(n);
  SpMV(geo, ones, b);

  // Validation: preconditioning must cut the iteration count.
  {
    CgOptions plain;
    plain.max_iterations = 500;
    plain.tolerance = 1e-6;
    plain.preconditioned = false;
    Vec x(n, 0.0);
    CgSolver solver(geo, plain);
    report.unpreconditioned_iterations = solver.Solve(b, x).iterations;
  }
  {
    CgOptions pre;
    pre.max_iterations = 500;
    pre.tolerance = 1e-6;
    pre.preconditioned = true;
    Vec x(n, 0.0);
    CgSolver solver(geo, pre);
    report.preconditioned_iterations = solver.Solve(b, x).iterations;
  }

  // Timed sets: fixed iteration count, no early exit (rating measures
  // throughput, not convergence).
  CgOptions timed;
  timed.max_iterations = options.iterations_per_set;
  timed.tolerance = 0.0;
  timed.preconditioned = true;
  CgSolver solver(geo, timed);

  const auto t0 = Clock::now();
  for (int set = 0; set < options.sets || options.time_budget_seconds > 0.0;
       ++set) {
    Vec x(n, 0.0);
    const CgResult r = solver.Solve(b, x);
    report.total_flops += r.flops;
    report.final_residual = r.final_residual;
    ++report.sets_run;
    const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    if (options.time_budget_seconds > 0.0) {
      if (elapsed >= options.time_budget_seconds) break;
    } else if (set + 1 >= options.sets) {
      break;
    }
  }
  report.total_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  report.gflops = report.total_seconds > 0.0
                      ? static_cast<double>(report.total_flops) /
                            report.total_seconds / 1e9
                      : 0.0;
  return report;
}

std::string BenchmarkReport::Summary() const {
  std::ostringstream out;
  out << "mini-HPCG: sets=" << sets_run << " gflops=" << gflops
      << " symmetry_error=" << symmetry_error
      << " cg_iters(plain/mg)=" << unpreconditioned_iterations << "/"
      << preconditioned_iterations << " residual=" << final_residual;
  return out.str();
}

}  // namespace eco::hpcg
