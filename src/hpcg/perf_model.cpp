#include "hpcg/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace eco::hpcg {

HpcgPerfModel::HpcgPerfModel(PerfModelParams params) : params_(params) {
  const double n = params_.reference_cores;
  const double eps = FrequencyElasticity(params_.reference_cores);
  scale_ = params_.reference_gflops /
           (std::pow(n, params_.core_exponent) *
            std::pow(params_.reference_ghz, eps));
}

double HpcgPerfModel::FrequencyElasticity(int cores) const {
  const double n = std::max(1, cores);
  return params_.eps_floor +
         (1.0 - params_.eps_floor) * std::exp(-(n - 1.0) / params_.eps_decay);
}

double HpcgPerfModel::Gflops(int cores, KiloHertz f, bool ht) const {
  if (cores <= 0) return 0.0;
  const double f_ghz = KiloHertzToGHz(f);
  if (f_ghz <= 0.0) return 0.0;
  const double eps = FrequencyElasticity(cores);
  double g = scale_ * std::pow(static_cast<double>(cores), params_.core_exponent) *
             std::pow(f_ghz, eps);
  if (ht) {
    const double h = 1.0 + params_.ht_gain * std::exp(-cores / params_.ht_gain_decay) -
                     params_.ht_penalty * cores / 32.0;
    g *= h;
  }
  return g;
}

double HpcgPerfModel::MeanUtilization(int cores, KiloHertz f, bool ht) const {
  // Issue density: achieved FLOPS over compute capability. Memory-bound runs
  // stall often, but stalled cores still clock — the power model's stall
  // fraction covers that; here we only report the issue-rate component.
  const double f_ghz = KiloHertzToGHz(f);
  const double capacity =
      std::max(1e-9, cores * params_.compute_gflops_per_ghz * f_ghz);
  const double density = Gflops(cores, f, ht) / capacity;
  // HPCG never idles a core outright; clamp into a plausible band.
  return std::clamp(0.55 + 0.45 * std::min(1.0, density), 0.0, 1.0);
}

double HpcgPerfModel::UtilizationAt(double t_seconds, int cores, KiloHertz f,
                                    bool ht) const {
  const double mean = MeanUtilization(cores, f, ht);
  const double f_ghz = KiloHertzToGHz(f);
  const double amp =
      params_.phase_amp_base +
      params_.phase_amp_per_ghz_above_knee * std::max(0.0, f_ghz - params_.knee_ghz);
  const double phase =
      std::sin(2.0 * M_PI * t_seconds / params_.phase_period_s) * 0.5 +
      std::sin(2.0 * M_PI * t_seconds / (params_.phase_period_s * 0.37)) * 0.5;
  return std::clamp(mean * (1.0 - amp * (0.5 + 0.5 * phase)), 0.0, 1.0);
}

double HpcgPerfModel::TotalFlops(const HpcgProblem& problem, int cores,
                                 int iterations) {
  return static_cast<double>(problem.LocalPoints()) * cores * iterations *
         HpcgProblem::kFlopsPerPointPerIteration;
}

int HpcgPerfModel::IterationsForDuration(const HpcgProblem& problem,
                                         double target_seconds) const {
  const double ref_gflops = params_.reference_gflops;
  const double flops_per_iter = static_cast<double>(problem.LocalPoints()) *
                                params_.reference_cores *
                                HpcgProblem::kFlopsPerPointPerIteration;
  const double iters = target_seconds * ref_gflops * 1e9 / flops_per_iter;
  return std::max(1, static_cast<int>(std::llround(iters)));
}

}  // namespace eco::hpcg
