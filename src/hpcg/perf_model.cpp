#include "hpcg/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/log.hpp"

namespace eco::hpcg {

namespace {

// Flop shares of one CG iteration at the official accounting
// (kFlopsPerPointPerIteration = 308 per point): one fine-grid SpMV costs
// 2·27 = 54, the BLAS-1 tail (dots + waxpbys) ~10, and the MG/SymGS
// preconditioner is the remainder. These weight the measured kernel rates
// into a whole-iteration composite (time-weighted harmonic mean).
constexpr double kSpmvShare = 54.0 / 308.0;
constexpr double kBlas1Share = 10.0 / 308.0;
constexpr double kSymgsShare = 1.0 - kSpmvShare - kBlas1Share;

double Metric(const JsonObject& m, const std::string& key) {
  const auto it = m.find(key);
  return it != m.end() ? it->second.as_number(0.0) : 0.0;
}

// Composite GFLOPS for one measured pool size: seconds per flop of the
// iteration is the flop-share-weighted sum of each kernel's seconds per
// flop. Zero when a required kernel rate is missing.
double CompositeGflops(const JsonObject& m, int pool) {
  const std::string p = "_p" + std::to_string(pool);
  const double spmv = Metric(m, "spmv_gflops" + p);
  // The lexicographic SymGS is serial by contract; pooled sweeps use the
  // multicolor variant, so the composite does too.
  const double symgs = pool == 0 ? Metric(m, "symgs_gflops_p0")
                                 : Metric(m, "symgs_colored_gflops" + p);
  const double dot = Metric(m, "dot_gflops" + p);
  const double waxpby = Metric(m, "waxpby_gflops" + p);
  if (spmv <= 0.0 || symgs <= 0.0) return 0.0;
  // BLAS-1 rate: equal-weight harmonic mean of dot and waxpby (one CG
  // iteration runs a comparable flop volume of each); fall back to the
  // stencil rates when a bench didn't record them.
  double blas1 = 0.0;
  if (dot > 0.0 && waxpby > 0.0) {
    blas1 = 2.0 / (1.0 / dot + 1.0 / waxpby);
  } else {
    blas1 = dot > 0.0 ? dot : waxpby;
  }
  double inv = kSpmvShare / spmv + kSymgsShare / symgs;
  inv += blas1 > 0.0 ? kBlas1Share / blas1 : kBlas1Share / spmv;
  return 1.0 / inv;
}

std::string ReadWholeFile(const std::string& path, bool* ok) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *ok = false;
    return {};
  }
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  *ok = true;
  return out;
}

}  // namespace

Result<KernelCalibration> KernelCalibration::FromArtifact(const Json& artifact) {
  if (!artifact.is_object() || !artifact.at("metrics").is_object()) {
    return Result<KernelCalibration>::Error(
        "calibration artifact has no metrics object");
  }
  const JsonObject& m = artifact.at("metrics").as_object();

  KernelCalibration cal;
  cal.isa_tier = artifact.at("metrics").at("isa_tier").as_string();

  // One composite point per pool size the bench measured, worker count 0
  // meaning the serial path (one core).
  constexpr const char* kPrefix = "spmv_gflops_p";
  for (const auto& [key, value] : m) {
    if (key.rfind(kPrefix, 0) != 0) continue;
    const std::string tail = key.substr(std::string(kPrefix).size());
    if (tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos) {
      continue;  // a per-tier key like spmv_gflops_avx2_p0
    }
    const int pool = std::atoi(tail.c_str());
    const double composite = CompositeGflops(m, pool);
    if (composite <= 0.0) continue;
    cal.points.push_back({std::max(1, pool), composite});
    (void)value;
  }
  std::sort(cal.points.begin(), cal.points.end(),
            [](const Point& a, const Point& b) { return a.cores < b.cores; });
  if (cal.points.empty()) {
    return Result<KernelCalibration>::Error(
        "calibration artifact has no usable spmv/symgs GFLOPS points");
  }

  // Machine balance inputs. Streaming bandwidth from the serial BLAS-1
  // kernels (8 bytes per flop in the streaming model); peak FLOPS from the
  // best SpMV rate any measured ISA tier reached.
  cal.stream_bandwidth_gbs =
      std::max(Metric(m, "dot_gflops_p0"), Metric(m, "waxpby_gflops_p0")) * 8.0;
  // Serial rates only: the bandwidth above was measured serially, and the
  // balance point has to compare like with like.
  cal.peak_gflops = Metric(m, "spmv_gflops_p0");
  for (const auto& [key, value] : m) {
    if (key.rfind("spmv_gflops_", 0) == 0 && value.is_number() &&
        key.size() >= 3 && key.compare(key.size() - 3, 3, "_p0") == 0) {
      cal.peak_gflops = std::max(cal.peak_gflops, value.as_number());
    }
  }
  const double spmv_bpf = Metric(m, "spmv_bytes_per_flop");
  const double symgs_bpf = Metric(m, "symgs_bytes_per_flop");
  const double blas1_bpf = 8.0;
  if (spmv_bpf > 0.0 && symgs_bpf > 0.0) {
    cal.iteration_bytes_per_flop = kSpmvShare * spmv_bpf +
                                   kSymgsShare * symgs_bpf +
                                   kBlas1Share * blas1_bpf;
  }
  return cal;
}

Result<KernelCalibration> KernelCalibration::FromFile(const std::string& path) {
  bool ok = false;
  const std::string text = ReadWholeFile(path, &ok);
  if (!ok) {
    return Result<KernelCalibration>::Error("cannot read calibration file: " +
                                            path);
  }
  Result<Json> parsed = Json::Parse(text);
  if (!parsed.ok()) {
    return Result<KernelCalibration>::Error("cannot parse " + path + ": " +
                                            parsed.message());
  }
  Result<KernelCalibration> cal = FromArtifact(parsed.value());
  if (cal.ok()) cal.value().source = path;
  return cal;
}

HpcgPerfModel::HpcgPerfModel(PerfModelParams params) : params_(params) {
  // A non-positive reference point would push NaN/Inf through every job
  // duration and GFLOPS/W ranking downstream; fail loudly and fall back to
  // the paper-fitted defaults instead of silently dividing.
  if (params_.reference_cores <= 0 || params_.reference_gflops <= 0.0 ||
      params_.reference_ghz <= 0.0 || params_.flops_per_point <= 0.0) {
    ECO_ERROR << "HpcgPerfModel: invalid reference point (cores="
              << params_.reference_cores
              << ", gflops=" << params_.reference_gflops
              << ", ghz=" << params_.reference_ghz
              << ", flops/point=" << params_.flops_per_point
              << "); using Epyc7502P defaults";
    params_ = PerfModelParams::Epyc7502P();
  }
  const double n = params_.reference_cores;
  const double eps = FrequencyElasticity(params_.reference_cores);
  scale_ = params_.reference_gflops /
           (std::pow(n, params_.core_exponent) *
            std::pow(params_.reference_ghz, eps));
}

double HpcgPerfModel::FrequencyElasticity(int cores) const {
  const double n = std::max(1, cores);
  return params_.eps_floor +
         (1.0 - params_.eps_floor) * std::exp(-(n - 1.0) / params_.eps_decay);
}

double HpcgPerfModel::Gflops(int cores, KiloHertz f, bool ht) const {
  if (cores <= 0) return 0.0;
  const double f_ghz = KiloHertzToGHz(f);
  if (f_ghz <= 0.0) return 0.0;
  const double eps = FrequencyElasticity(cores);
  double g = scale_ * std::pow(static_cast<double>(cores), params_.core_exponent) *
             std::pow(f_ghz, eps);
  if (ht) {
    const double h = 1.0 + params_.ht_gain * std::exp(-cores / params_.ht_gain_decay) -
                     params_.ht_penalty * cores / 32.0;
    g *= h;
  }
  return g;
}

double HpcgPerfModel::MeanUtilization(int cores, KiloHertz f, bool ht) const {
  // Issue density: achieved FLOPS over compute capability. Memory-bound runs
  // stall often, but stalled cores still clock — the power model's stall
  // fraction covers that; here we only report the issue-rate component.
  const double f_ghz = KiloHertzToGHz(f);
  const double capacity =
      std::max(1e-9, cores * params_.compute_gflops_per_ghz * f_ghz);
  const double density = Gflops(cores, f, ht) / capacity;
  // HPCG never idles a core outright; clamp into a plausible band.
  return std::clamp(0.55 + 0.45 * std::min(1.0, density), 0.0, 1.0);
}

double HpcgPerfModel::UtilizationAt(double t_seconds, int cores, KiloHertz f,
                                    bool ht) const {
  const double mean = MeanUtilization(cores, f, ht);
  const double f_ghz = KiloHertzToGHz(f);
  const double amp =
      params_.phase_amp_base +
      params_.phase_amp_per_ghz_above_knee * std::max(0.0, f_ghz - params_.knee_ghz);
  const double phase =
      std::sin(2.0 * M_PI * t_seconds / params_.phase_period_s) * 0.5 +
      std::sin(2.0 * M_PI * t_seconds / (params_.phase_period_s * 0.37)) * 0.5;
  return std::clamp(mean * (1.0 - amp * (0.5 + 0.5 * phase)), 0.0, 1.0);
}

double HpcgPerfModel::TotalFlops(const HpcgProblem& problem, int cores,
                                 int iterations) {
  return static_cast<double>(problem.LocalPoints()) * cores * iterations *
         HpcgProblem::kFlopsPerPointPerIteration;
}

double HpcgPerfModel::TotalFlopsFor(const HpcgProblem& problem, int cores,
                                    int iterations) const {
  return static_cast<double>(problem.LocalPoints()) * cores * iterations *
         params_.flops_per_point;
}

int HpcgPerfModel::IterationsForDuration(const HpcgProblem& problem,
                                         double target_seconds) const {
  const double ref_gflops = params_.reference_gflops;
  const double flops_per_iter = static_cast<double>(problem.LocalPoints()) *
                                params_.reference_cores *
                                params_.flops_per_point;
  const double iters = target_seconds * ref_gflops * 1e9 / flops_per_iter;
  return std::max(1, static_cast<int>(std::llround(iters)));
}

bool HpcgPerfModel::CalibrateFrom(const KernelCalibration& cal) {
  double best_gflops = 0.0;
  int best_cores = 0;
  for (const KernelCalibration::Point& p : cal.points) {
    if (p.cores <= 0 || p.gflops <= 0.0) continue;
    if (p.cores > best_cores) {
      best_cores = p.cores;
      best_gflops = p.gflops;
    }
  }
  if (best_cores <= 0) return false;

  PerfModelParams next = params_;
  // Reference point = the widest measured configuration; Gflops() there
  // then equals the measurement exactly, whatever the other parameters say.
  next.reference_cores = best_cores;
  next.reference_gflops = best_gflops;

  // Core-scaling exponent: least-squares slope of log(gflops) over
  // log(cores), needing at least two distinct core counts. Clamped to
  // [0.3, 1.0]: a shared box can measure a pool that scales not at all
  // (slope ~0) or superlinearly through cache effects, and the scheduler
  // model should stay in the physically plausible band either way.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int distinct = 0, count = 0, last_cores = 0;
  for (const KernelCalibration::Point& p : cal.points) {
    if (p.cores <= 0 || p.gflops <= 0.0) continue;
    if (p.cores != last_cores) ++distinct;
    last_cores = p.cores;
    const double x = std::log(static_cast<double>(p.cores));
    const double y = std::log(p.gflops);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++count;
  }
  if (distinct >= 2) {
    const double denom = count * sxx - sx * sx;
    if (denom > 1e-12) {
      next.core_exponent =
          std::clamp((count * sxy - sx * sy) / denom, 0.3, 1.0);
    }
  }

  // Elasticity floor from the machine-balance point: the iteration's
  // bytes/flop over what the machine can feed at peak FLOPS is its
  // memory-boundness; the compute remainder is the fraction of time a
  // faster clock still buys at full saturation.
  if (cal.stream_bandwidth_gbs > 0.0 && cal.peak_gflops > 0.0 &&
      cal.iteration_bytes_per_flop > 0.0) {
    const double balance_bpf = cal.stream_bandwidth_gbs / cal.peak_gflops;
    const double boundness =
        std::min(1.0, cal.iteration_bytes_per_flop / balance_bpf);
    next.eps_floor = std::clamp(1.0 - boundness, 0.05, 0.95);
  }

  *this = HpcgPerfModel(next);
  return true;
}

void ApplyEnvCalibration(HpcgPerfModel* model) {
  static const std::optional<KernelCalibration> cal =
      []() -> std::optional<KernelCalibration> {
    const char* path = std::getenv("ECO_PERF_CALIBRATION");
    if (path == nullptr || *path == '\0') return std::nullopt;
    Result<KernelCalibration> r = KernelCalibration::FromFile(path);
    if (!r.ok()) {
      ECO_WARN << "ECO_PERF_CALIBRATION ignored: " << r.message();
      return std::nullopt;
    }
    ECO_INFO << "perf model calibrated from " << path << " (isa tier "
             << (r.value().isa_tier.empty() ? "?" : r.value().isa_tier)
             << ", " << r.value().points.size() << " points)";
    return std::move(r).value();
  }();
  if (cal.has_value()) model->CalibrateFrom(*cal);
}

}  // namespace eco::hpcg
