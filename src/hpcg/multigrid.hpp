// Multigrid V-cycle preconditioner, mirroring reference HPCG:
// up to 4 levels, each level doing one pre-smooth SymGS, a residual
// restriction by injection to the half-resolution grid, a recursive solve,
// prolongation (point injection add-back), and one post-smooth SymGS.
#pragma once

#include <cstdint>
#include <vector>

#include "hpcg/geometry.hpp"
#include "hpcg/stencil.hpp"
#include "hpcg/vector_ops.hpp"

namespace eco::hpcg {

class Multigrid {
 public:
  // Builds a hierarchy starting at `fine`, coarsening while the geometry
  // halves cleanly, up to `max_levels` levels (HPCG uses 4). With a pool the
  // SpMV/Waxpby kernels tile across it; `colored_smoother` additionally
  // switches the smoother to the parallel multicolor SymGS (different update
  // order than the serial lexicographic sweep — keep it off where bitwise
  // agreement with the serial solver matters).
  explicit Multigrid(const Geometry& fine, int max_levels = 4,
                     ThreadPool* pool = nullptr, bool colored_smoother = false);

  [[nodiscard]] int levels() const { return static_cast<int>(geos_.size()); }
  [[nodiscard]] const Geometry& geometry(int level) const { return geos_[level]; }

  // z = M^{-1} r on the finest level. Accumulates FLOPs into `flops`.
  void Apply(const Vec& r, Vec& z, std::uint64_t& flops);

  // FLOPs of one full V-cycle (constant per hierarchy).
  [[nodiscard]] std::uint64_t CycleFlops() const;

 private:
  void Cycle(int level, const Vec& r, Vec& z, std::uint64_t& flops);
  void Smooth(const Geometry& geo, const Vec& r, Vec& z) const;
  void Restrict(int fine_level, const Vec& fine_residual, Vec& coarse_r) const;
  void Prolong(int fine_level, const Vec& coarse_z, Vec& fine_z) const;

  std::vector<Geometry> geos_;
  ThreadPool* pool_ = nullptr;
  bool colored_smoother_ = false;
  // Scratch vectors per level, reused across applications. (No A z scratch:
  // the residual is computed by the fused SpMVResidual kernel.)
  std::vector<Vec> residual_;  // r - A z on this level
  std::vector<Vec> coarse_r_;  // restricted residual (next level's rhs)
  std::vector<Vec> coarse_z_;  // next level's correction
};

}  // namespace eco::hpcg
