// The `hpcg_kernel` telemetry family: per-kernel invocation, FLOP and wall-
// nanosecond counters published into a PR-4 MetricsRegistry
// (`eco_hpcg_kernel_{calls,flops,wall_ns}_total{kernel="spmv"}` …).
//
// Off by default. Detached (the default), a kernel call costs exactly one
// acquire load of a global pointer — the same discipline as the disabled
// lifecycle tracer, so the kernels stay inside the PR-4 trace-overhead gate.
// Attached, each kernel call adds two monotonic clock reads and three
// sharded-counter increments (wait-free, pool-worker safe).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/perf.hpp"
#include "common/telemetry/metrics.hpp"

namespace eco::hpcg {

// Every instrumented kernel, in export order.
enum class Kernel : int {
  kSpMV = 0,
  kSpMVDot,
  kSpMVResidual,
  kSymGS,
  kSymGSColored,
  kDot,
  kWaxpby,
  kWaxpbyDot,
};
inline constexpr int kKernelCount = 8;

// Label value used in the metric family ("spmv", "symgs", ...).
const char* KernelName(Kernel kernel);

// Attaches the family to `registry` (creating the counter handles), or
// detaches with nullptr. Counter handles live as long as the registry;
// attach tables are retained for the process lifetime so a concurrent
// kernel never reads a freed table. Not meant for per-iteration toggling —
// attach once per bench/sim.
void SetKernelTelemetry(telemetry::MetricsRegistry* registry);

namespace detail {

struct KernelCounters {
  telemetry::Counter* calls = nullptr;
  telemetry::Counter* flops = nullptr;
  telemetry::Counter* wall_ns = nullptr;
};

struct KernelTable {
  KernelCounters kernels[kKernelCount];
};

extern std::atomic<const KernelTable*> g_kernel_table;

}  // namespace detail

// RAII guard a kernel opens for one invocation: counts calls/flops/elapsed
// wall nanos when telemetry is attached, and is a single relaxed-cost load
// when detached.
class KernelScope {
 public:
  KernelScope(Kernel kernel, std::uint64_t flops)
      : table_(detail::g_kernel_table.load(std::memory_order_acquire)),
        kernel_(kernel),
        flops_(flops),
        start_(table_ != nullptr ? NowNanos() : 0) {}
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;
  ~KernelScope() {
    if (table_ == nullptr) return;
    const detail::KernelCounters& c =
        table_->kernels[static_cast<int>(kernel_)];
    c.calls->Add(1);
    c.flops->Add(flops_);
    c.wall_ns->Add(NowNanos() - start_);
  }

 private:
  const detail::KernelTable* table_;
  Kernel kernel_;
  std::uint64_t flops_;
  std::uint64_t start_;
};

}  // namespace eco::hpcg
