// AVX2 tier: four-wide vectors (16-lane stride-1 blocks) plus the Hsum27
// masked-load horizontal sum for strided lanes. Compiled with
// -mavx2 -ffp-contract=off (src/hpcg/CMakeLists.txt); on a toolchain that
// cannot target AVX2 the tier degrades to a nullptr table and dispatch
// reports it unsupported.
#if defined(__AVX2__)
#define ECO_TIER_NS tier_avx2
#define ECO_TIER_W 4
#define ECO_TIER_HSUM 1
#define ECO_TIER_GETTER GetKernelOps_avx2
#include "hpcg/stencil_tiers.inc"
#else
#include "hpcg/dispatch.hpp"

namespace eco::hpcg::detail {
const KernelOps* GetKernelOps_avx2() { return nullptr; }
}  // namespace eco::hpcg::detail
#endif
