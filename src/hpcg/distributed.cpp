#include "hpcg/distributed.hpp"

#include <cmath>

namespace eco::hpcg {
namespace {

constexpr double kDiag = 26.0;

}  // namespace

DistributedGrid::DistributedGrid(const Geometry& local, int px, int py, int pz)
    : local_(local), px_(px), py_(py), pz_(pz) {}

std::vector<Vec> DistributedGrid::MakeVector() const {
  const auto padded_size = static_cast<std::size_t>(padded().size());
  return std::vector<Vec>(static_cast<std::size_t>(ranks()),
                          Vec(padded_size, 0.0));
}

void DistributedGrid::Scatter(const Vec& global, std::vector<Vec>& dist) const {
  const Geometry g = this->global();
  const Geometry pad = padded();
  for (int rz = 0; rz < pz_; ++rz) {
    for (int ry = 0; ry < py_; ++ry) {
      for (int rx = 0; rx < px_; ++rx) {
        Vec& rank_vec = dist[static_cast<std::size_t>(RankId(rx, ry, rz))];
        for (int iz = 0; iz < local_.nz; ++iz) {
          for (int iy = 0; iy < local_.ny; ++iy) {
            for (int ix = 0; ix < local_.nx; ++ix) {
              rank_vec[static_cast<std::size_t>(
                  pad.Index(ix + 1, iy + 1, iz + 1))] =
                  global[static_cast<std::size_t>(
                      g.Index(rx * local_.nx + ix, ry * local_.ny + iy,
                              rz * local_.nz + iz))];
            }
          }
        }
      }
    }
  }
}

void DistributedGrid::Gather(const std::vector<Vec>& dist, Vec& global) const {
  const Geometry g = this->global();
  const Geometry pad = padded();
  global.assign(static_cast<std::size_t>(g.size()), 0.0);
  for (int rz = 0; rz < pz_; ++rz) {
    for (int ry = 0; ry < py_; ++ry) {
      for (int rx = 0; rx < px_; ++rx) {
        const Vec& rank_vec = dist[static_cast<std::size_t>(RankId(rx, ry, rz))];
        for (int iz = 0; iz < local_.nz; ++iz) {
          for (int iy = 0; iy < local_.ny; ++iy) {
            for (int ix = 0; ix < local_.nx; ++ix) {
              global[static_cast<std::size_t>(
                  g.Index(rx * local_.nx + ix, ry * local_.ny + iy,
                          rz * local_.nz + iz))] =
                  rank_vec[static_cast<std::size_t>(
                      pad.Index(ix + 1, iy + 1, iz + 1))];
            }
          }
        }
      }
    }
  }
}

void DistributedGrid::ExchangeHalo(std::vector<Vec>& dist) const {
  const Geometry g = this->global();
  const Geometry pad = padded();
  for (int rz = 0; rz < pz_; ++rz) {
    for (int ry = 0; ry < py_; ++ry) {
      for (int rx = 0; rx < px_; ++rx) {
        Vec& rank_vec = dist[static_cast<std::size_t>(RankId(rx, ry, rz))];
        // Walk all padded cells; halo cells are those with any coordinate on
        // the pad boundary. (26 faces/edges/corners in one generic loop —
        // performance is irrelevant here, correctness is everything.)
        for (int pz = 0; pz < pad.nz; ++pz) {
          const bool hz = pz == 0 || pz == pad.nz - 1;
          for (int py = 0; py < pad.ny; ++py) {
            const bool hy = py == 0 || py == pad.ny - 1;
            for (int px = 0; px < pad.nx; ++px) {
              const bool hx = px == 0 || px == pad.nx - 1;
              if (!hx && !hy && !hz) continue;  // interior: owned cell
              const int gx = rx * local_.nx + px - 1;
              const int gy = ry * local_.ny + py - 1;
              const int gz = rz * local_.nz + pz - 1;
              double value = 0.0;  // outside the global domain
              if (gx >= 0 && gx < g.nx && gy >= 0 && gy < g.ny && gz >= 0 &&
                  gz < g.nz) {
                const int owner_x = gx / local_.nx;
                const int owner_y = gy / local_.ny;
                const int owner_z = gz / local_.nz;
                const Vec& owner_vec = dist[static_cast<std::size_t>(
                    RankId(owner_x, owner_y, owner_z))];
                value = owner_vec[static_cast<std::size_t>(
                    pad.Index(gx % local_.nx + 1, gy % local_.ny + 1,
                              gz % local_.nz + 1))];
              }
              rank_vec[static_cast<std::size_t>(pad.Index(px, py, pz))] = value;
            }
          }
        }
      }
    }
  }
}

void DistributedGrid::SpMV(std::vector<Vec>& x, std::vector<Vec>& y) const {
  ExchangeHalo(x);
  const Geometry pad = padded();
  for (int rank = 0; rank < ranks(); ++rank) {
    const Vec& xr = x[static_cast<std::size_t>(rank)];
    Vec& yr = y[static_cast<std::size_t>(rank)];
    for (int iz = 1; iz <= local_.nz; ++iz) {
      for (int iy = 1; iy <= local_.ny; ++iy) {
        for (int ix = 1; ix <= local_.nx; ++ix) {
          double sum = 0.0;
          for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0 && dz == 0) continue;
                sum += xr[static_cast<std::size_t>(
                    pad.Index(ix + dx, iy + dy, iz + dz))];
              }
            }
          }
          const auto i = static_cast<std::size_t>(pad.Index(ix, iy, iz));
          yr[i] = kDiag * xr[i] - sum;
        }
      }
    }
  }
}

void DistributedGrid::SchwarzSymGS(std::vector<Vec>& r,
                                   std::vector<Vec>& z) const {
  ExchangeHalo(z);
  const Geometry pad = padded();
  const auto neighbour_sum = [&](const Vec& v, int ix, int iy, int iz) {
    double sum = 0.0;
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          sum += v[static_cast<std::size_t>(
              pad.Index(ix + dx, iy + dy, iz + dz))];
        }
      }
    }
    return sum;
  };
  for (int rank = 0; rank < ranks(); ++rank) {
    const Vec& rr = r[static_cast<std::size_t>(rank)];
    Vec& zr = z[static_cast<std::size_t>(rank)];
    // Forward sweep over owned cells.
    for (int iz = 1; iz <= local_.nz; ++iz) {
      for (int iy = 1; iy <= local_.ny; ++iy) {
        for (int ix = 1; ix <= local_.nx; ++ix) {
          const auto i = static_cast<std::size_t>(pad.Index(ix, iy, iz));
          zr[i] = (rr[i] + neighbour_sum(zr, ix, iy, iz)) / kDiag;
        }
      }
    }
    // Backward sweep.
    for (int iz = local_.nz; iz >= 1; --iz) {
      for (int iy = local_.ny; iy >= 1; --iy) {
        for (int ix = local_.nx; ix >= 1; --ix) {
          const auto i = static_cast<std::size_t>(pad.Index(ix, iy, iz));
          zr[i] = (rr[i] + neighbour_sum(zr, ix, iy, iz)) / kDiag;
        }
      }
    }
  }
}

double DistributedGrid::Dot(const std::vector<Vec>& a,
                            const std::vector<Vec>& b) const {
  const Geometry pad = padded();
  double total = 0.0;  // the "allreduce"
  for (int rank = 0; rank < ranks(); ++rank) {
    const Vec& ar = a[static_cast<std::size_t>(rank)];
    const Vec& br = b[static_cast<std::size_t>(rank)];
    double local_sum = 0.0;
    for (int iz = 1; iz <= local_.nz; ++iz) {
      for (int iy = 1; iy <= local_.ny; ++iy) {
        for (int ix = 1; ix <= local_.nx; ++ix) {
          const auto i = static_cast<std::size_t>(pad.Index(ix, iy, iz));
          local_sum += ar[i] * br[i];
        }
      }
    }
    total += local_sum;
  }
  return total;
}

void DistributedGrid::Waxpby(double alpha, const std::vector<Vec>& x,
                             double beta, const std::vector<Vec>& y,
                             std::vector<Vec>& w) const {
  const Geometry pad = padded();
  for (int rank = 0; rank < ranks(); ++rank) {
    const Vec& xr = x[static_cast<std::size_t>(rank)];
    const Vec& yr = y[static_cast<std::size_t>(rank)];
    Vec& wr = w[static_cast<std::size_t>(rank)];
    for (int iz = 1; iz <= local_.nz; ++iz) {
      for (int iy = 1; iy <= local_.ny; ++iy) {
        for (int ix = 1; ix <= local_.nx; ++ix) {
          const auto i = static_cast<std::size_t>(pad.Index(ix, iy, iz));
          wr[i] = alpha * xr[i] + beta * yr[i];
        }
      }
    }
  }
}

DistributedCgResult DistributedCgSolve(const DistributedGrid& grid,
                                       const Vec& b, Vec& x,
                                       int max_iterations, double tolerance,
                                       bool preconditioned) {
  DistributedCgResult result;
  auto xd = grid.MakeVector();
  auto bd = grid.MakeVector();
  auto r = grid.MakeVector();
  auto z = grid.MakeVector();
  auto p = grid.MakeVector();
  auto ap = grid.MakeVector();
  grid.Scatter(x, xd);
  grid.Scatter(b, bd);

  grid.SpMV(xd, ap);
  grid.Waxpby(1.0, bd, -1.0, ap, r);
  double norm_r = std::sqrt(grid.Dot(r, r));
  result.initial_residual = norm_r;
  const double stop = tolerance * norm_r;

  double rtz = 0.0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    if (tolerance > 0.0 && norm_r <= stop) {
      result.converged = true;
      break;
    }
    if (preconditioned) {
      // z starts from zero every application, like the serial MG smoother.
      for (auto& rank_vec : z) Fill(rank_vec, 0.0);
      grid.SchwarzSymGS(r, z);
    } else {
      z = r;
    }
    const double rtz_old = rtz;
    rtz = grid.Dot(r, z);
    if (iter == 0) {
      p = z;
    } else {
      grid.Waxpby(1.0, z, rtz / rtz_old, p, p);
    }
    grid.SpMV(p, ap);
    const double pap = grid.Dot(p, ap);
    if (pap <= 0.0) break;
    const double alpha = rtz / pap;
    grid.Waxpby(1.0, xd, alpha, p, xd);
    grid.Waxpby(1.0, r, -alpha, ap, r);
    norm_r = std::sqrt(grid.Dot(r, r));
    ++result.iterations;
  }
  if (tolerance > 0.0 && norm_r <= stop) result.converged = true;
  result.final_residual = norm_r;
  grid.Gather(xd, x);
  return result;
}

}  // namespace eco::hpcg
