// Scalar tier: plain C++ lane loops, no explicit vectors. The canonical
// per-lane tap order makes it bitwise identical to ref:: — it exists as the
// portable floor and as the dispatch fallback CI exercises via
// ECO_FORCE_ISA=scalar.
#define ECO_TIER_NS tier_scalar
#define ECO_TIER_W 1
#define ECO_TIER_GETTER GetKernelOps_scalar
#include "hpcg/stencil_tiers.inc"
