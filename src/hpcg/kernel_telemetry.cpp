#include "hpcg/kernel_telemetry.hpp"

#include <memory>
#include <mutex>
#include <vector>

#include "hpcg/dispatch.hpp"

namespace eco::hpcg {

namespace detail {
std::atomic<const KernelTable*> g_kernel_table{nullptr};
}  // namespace detail

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kSpMV:
      return "spmv";
    case Kernel::kSpMVDot:
      return "spmv_dot";
    case Kernel::kSpMVResidual:
      return "spmv_residual";
    case Kernel::kSymGS:
      return "symgs";
    case Kernel::kSymGSColored:
      return "symgs_colored";
    case Kernel::kDot:
      return "dot";
    case Kernel::kWaxpby:
      return "waxpby";
    case Kernel::kWaxpbyDot:
      return "waxpby_dot";
  }
  return "unknown";
}

void SetKernelTelemetry(telemetry::MetricsRegistry* registry) {
  // Tables are retained forever (attach is O(1) per process, tables are
  // tiny): a kernel racing with a re-attach keeps a valid pointer.
  static std::mutex mutex;
  static std::vector<std::unique_ptr<detail::KernelTable>> retained;

  if (registry == nullptr) {
    detail::g_kernel_table.store(nullptr, std::memory_order_release);
    return;
  }
  // Which ISA tier the kernels dispatch to (the IsaTier enum value), so a
  // scrape can tell an sse2 run from an avx2 run without parsing logs.
  registry->GetGauge("eco_hpcg_kernel_isa_tier")
      ->Set(static_cast<double>(ActiveIsaTier()));

  auto table = std::make_unique<detail::KernelTable>();
  for (int k = 0; k < kKernelCount; ++k) {
    const char* name = KernelName(static_cast<Kernel>(k));
    detail::KernelCounters& c = table->kernels[k];
    c.calls = registry->GetCounter(
        telemetry::LabeledName("eco_hpcg_kernel_calls_total", "kernel", name));
    c.flops = registry->GetCounter(
        telemetry::LabeledName("eco_hpcg_kernel_flops_total", "kernel", name));
    c.wall_ns = registry->GetCounter(telemetry::LabeledName(
        "eco_hpcg_kernel_wall_ns_total", "kernel", name));
  }
  std::lock_guard<std::mutex> lock(mutex);
  detail::g_kernel_table.store(table.get(), std::memory_order_release);
  retained.push_back(std::move(table));
}

}  // namespace eco::hpcg
