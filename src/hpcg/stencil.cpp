#include "hpcg/stencil.hpp"

#include <algorithm>
#include <type_traits>

#include "hpcg/kernel_telemetry.hpp"

namespace eco::hpcg {
namespace {

constexpr double kDiag = 26.0;

// Sums x over the (up to 26) neighbours of (ix,iy,iz) — the fully guarded
// boundary path. The dz→dy→dx visit order is the contract the branch-free
// interior paths reproduce: floating-point addition is not reassociated, so
// matching this order is what keeps interior results bitwise identical.
inline double NeighbourSum(const Geometry& geo, const Vec& x, int ix, int iy,
                           int iz) {
  double sum = 0.0;
  for (int dz = -1; dz <= 1; ++dz) {
    const int z = iz + dz;
    if (z < 0 || z >= geo.nz) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = iy + dy;
      if (y < 0 || y >= geo.ny) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int xx = ix + dx;
        if (xx < 0 || xx >= geo.nx) continue;
        sum += x[geo.Index(xx, y, z)];
      }
    }
  }
  return sum;
}

// The valid (dz,dy) row-base pointers of one grid row, in the dz→dy order
// NeighbourSum visits them (rows outside the grid are dropped, so boundary
// rows get a shorter list). `center` is the index of the (0,0) row, whose
// dx == 0 tap (the diagonal) is skipped; it is always present. A tap value
// is q[t][i + dx] where i is the point's offset from the row base —
// constant-displacement addressing computed once per row, no per-point
// geo.Index multiplications. Valid for x-interior points (1 <= i <= nx-2).
struct RowTaps {
  // Value-initialized so the fixed 9-row readers (only ever reached when
  // Full() holds) don't trip -Wmaybe-uninitialized on partial rows.
  const double* q[9] = {};
  int count;
  int center;

  void Init(const double* base, std::int64_t row, const Geometry& geo, int iy,
            int iz) {
    const auto sy = static_cast<std::int64_t>(geo.nx);
    const std::int64_t sz = sy * geo.ny;
    count = 0;
    center = -1;
    for (int dz = -1; dz <= 1; ++dz) {
      if (iz + dz < 0 || iz + dz >= geo.nz) continue;
      for (int dy = -1; dy <= 1; ++dy) {
        if (iy + dy < 0 || iy + dy >= geo.ny) continue;
        if (dz == 0 && dy == 0) center = count;
        q[count++] = base + row + dz * sz + dy * sy;
      }
    }
  }

  [[nodiscard]] bool Full() const { return count == 9; }
};

// 26-tap neighbour sum of the fully interior point at row offset i
// (requires b.Full()): one serial add chain in the canonical dz→dy→dx
// order, bitwise equal to NeighbourSum. This chain's FP-add latency is the
// per-point floor — TapsBlock below is how the kernels climb above it.
inline double Taps26(const RowTaps& b, std::int64_t i) {
  double s = 0.0;
  s += b.q[0][i - 1]; s += b.q[0][i]; s += b.q[0][i + 1];
  s += b.q[1][i - 1]; s += b.q[1][i]; s += b.q[1][i + 1];
  s += b.q[2][i - 1]; s += b.q[2][i]; s += b.q[2][i + 1];
  s += b.q[3][i - 1]; s += b.q[3][i]; s += b.q[3][i + 1];
  s += b.q[4][i - 1];                 s += b.q[4][i + 1];
  s += b.q[5][i - 1]; s += b.q[5][i]; s += b.q[5][i + 1];
  s += b.q[6][i - 1]; s += b.q[6][i]; s += b.q[6][i + 1];
  s += b.q[7][i - 1]; s += b.q[7][i]; s += b.q[7][i + 1];
  s += b.q[8][i - 1]; s += b.q[8][i]; s += b.q[8][i + 1];
  return s;
}

// Variable-row-count scalar chain for x-interior points of boundary rows
// (and the interior scalar tail): same canonical order over the valid rows.
inline double TapsVar(const RowTaps& b, std::int64_t i) {
  double s = 0.0;
  for (int t = 0; t < b.count; ++t) {
    s += b.q[t][i - 1];
    if (t != b.center) s += b.q[t][i];
    s += b.q[t][i + 1];
  }
  return s;
}

// B independent neighbour sums for the points at row offsets i0 + l*stride.
// Taps outer / lanes inner: each lane's accumulation order is exactly the
// canonical scalar chain (bitwise identical per point), but the B chains are
// mutually independent, so the serial FP-add latency that bounds the scalar
// chain is hidden behind instruction-level (and, for stride 1, SIMD)
// parallelism. StrideT is either a compile-time std::integral_constant
// (SpMV stride 1, colored sweep stride 2) or a runtime std::int64_t
// (Gauss–Seidel wavefront). The fixed 9-row version is kept separate from
// the variable-count one so the hot fully-interior case has no per-tap
// center test.
template <int B, class StrideT>
inline void TapsBlock26(const RowTaps& b, std::int64_t i0, StrideT stride_t,
                        double* s) {
  const std::int64_t stride = stride_t;
  for (int l = 0; l < B; ++l) s[l] = 0.0;
  for (int t = 0; t < 9; ++t) {
    const double* q = b.q[t] + i0;
    for (int l = 0; l < B; ++l) s[l] += q[l * stride - 1];
    if (t != 4) {
      for (int l = 0; l < B; ++l) s[l] += q[l * stride];
    }
    for (int l = 0; l < B; ++l) s[l] += q[l * stride + 1];
  }
}

template <int B, class StrideT>
inline void TapsBlockVar(const RowTaps& b, std::int64_t i0, StrideT stride_t,
                         double* s) {
  const std::int64_t stride = stride_t;
  for (int l = 0; l < B; ++l) s[l] = 0.0;
  for (int t = 0; t < b.count; ++t) {
    const double* q = b.q[t] + i0;
    for (int l = 0; l < B; ++l) s[l] += q[l * stride - 1];
    if (t != b.center) {
      for (int l = 0; l < B; ++l) s[l] += q[l * stride];
    }
    for (int l = 0; l < B; ++l) s[l] += q[l * stride + 1];
  }
}

template <std::int64_t N>
using StrideC = std::integral_constant<std::int64_t, N>;

// Explicit two-wide vector path for the contiguous (stride-1) 8-lane block.
// GCC's loop vectorizer leaves the unrolled lane loops scalar, which caps
// the sweep at the ~2 adds/cycle scalar throughput; pairing adjacent lanes
// into vector_size(16) accumulators doubles that. Vector addition is
// element-wise IEEE addition — each lane still receives its taps in the
// canonical dz→dy→dx order, so results stay bitwise identical.
using V2d = double __attribute__((vector_size(16)));

inline V2d LoadU(const double* p) {
  V2d v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

// Eight contiguous neighbour sums (requires b.Full()): accumulators a0..a3
// hold lane pairs {0,1}..{6,7}; per lane the add order equals Taps26's.
inline void Taps26Row8(const RowTaps& b, std::int64_t i0, double* s) {
  V2d a0 = {0.0, 0.0};
  V2d a1 = a0;
  V2d a2 = a0;
  V2d a3 = a0;
  for (int t = 0; t < 9; ++t) {
    const double* q = b.q[t] + i0;
    a0 += LoadU(q - 1);
    a1 += LoadU(q + 1);
    a2 += LoadU(q + 3);
    a3 += LoadU(q + 5);
    if (t != 4) {
      a0 += LoadU(q);
      a1 += LoadU(q + 2);
      a2 += LoadU(q + 4);
      a3 += LoadU(q + 6);
    }
    a0 += LoadU(q + 1);
    a1 += LoadU(q + 3);
    a2 += LoadU(q + 5);
    a3 += LoadU(q + 7);
  }
  __builtin_memcpy(s + 0, &a0, sizeof(a0));
  __builtin_memcpy(s + 2, &a1, sizeof(a1));
  __builtin_memcpy(s + 4, &a2, sizeof(a2));
  __builtin_memcpy(s + 6, &a3, sizeof(a3));
}

// Lane counts: 8 contiguous points for the elementwise sweeps (4 SSE / 2 AVX
// vectors of accumulators), 4 for the stride-2 colored sweep, 6 rows for the
// Gauss–Seidel wavefront (whose per-step division chains need the extra
// overlap).
constexpr int kSpMVLanes = 8;
constexpr int kColorLanes = 4;
constexpr int kGsLanes = 6;

// True when plane iz contains fully interior points (all 26 neighbours
// exist for some (ix,iy) in it).
inline bool InteriorPlane(const Geometry& geo, int iz) {
  return geo.nx > 2 && geo.ny > 2 && iz > 0 && iz + 1 < geo.nz;
}

void SpMVPlanes(const Geometry& geo, const Vec& x, Vec& y, int z_lo,
                int z_hi) {
  const double* xp = x.data();
  double* yp = y.data();
  const auto sy = static_cast<std::int64_t>(geo.nx);
  const std::int64_t sz = sy * geo.ny;
  for (int iz = z_lo; iz < z_hi; ++iz) {
    for (int iy = 0; iy < geo.ny; ++iy) {
      const std::int64_t row = iz * sz + iy * sy;
      if (geo.nx <= 2) {
        for (int ix = 0; ix < geo.nx; ++ix) {
          yp[row + ix] = kDiag * xp[row + ix] - NeighbourSum(geo, x, ix, iy, iz);
        }
        continue;
      }
      RowTaps b;
      b.Init(xp, row, geo, iy, iz);
      yp[row] = kDiag * xp[row] - NeighbourSum(geo, x, 0, iy, iz);
      int ix = 1;
      double s[kSpMVLanes];
      if (b.Full()) {
        for (; ix + kSpMVLanes <= geo.nx - 1; ix += kSpMVLanes) {
          Taps26Row8(b, ix, s);
          for (int l = 0; l < kSpMVLanes; ++l) {
            const std::int64_t i = row + ix + l;
            yp[i] = kDiag * xp[i] - s[l];
          }
        }
      } else {
        for (; ix + kSpMVLanes <= geo.nx - 1; ix += kSpMVLanes) {
          TapsBlockVar<kSpMVLanes>(b, ix, StrideC<1>{}, s);
          for (int l = 0; l < kSpMVLanes; ++l) {
            const std::int64_t i = row + ix + l;
            yp[i] = kDiag * xp[i] - s[l];
          }
        }
      }
      for (; ix + 1 < geo.nx; ++ix) {
        const std::int64_t i = row + ix;
        yp[i] = kDiag * xp[i] - TapsVar(b, ix);
      }
      const std::int64_t last = row + geo.nx - 1;
      yp[last] = kDiag * xp[last] - NeighbourSum(geo, x, geo.nx - 1, iy, iz);
    }
  }
}

// out = r - A x over planes [z_lo, z_hi). The A x value is rounded exactly
// as SpMV rounds it, and ±1 coefficients keep the final subtraction a single
// rounding — bitwise equal to SpMV + Waxpby(1, r, -1, ax).
void SpMVResidualPlanes(const Geometry& geo, const Vec& x, const Vec& r,
                        Vec& out, int z_lo, int z_hi) {
  const double* xp = x.data();
  const double* rp = r.data();
  double* op = out.data();
  const auto sy = static_cast<std::int64_t>(geo.nx);
  const std::int64_t sz = sy * geo.ny;
  for (int iz = z_lo; iz < z_hi; ++iz) {
    for (int iy = 0; iy < geo.ny; ++iy) {
      const std::int64_t row = iz * sz + iy * sy;
      if (geo.nx <= 2) {
        for (int ix = 0; ix < geo.nx; ++ix) {
          const std::int64_t i = row + ix;
          const double ax = kDiag * xp[i] - NeighbourSum(geo, x, ix, iy, iz);
          op[i] = rp[i] - ax;
        }
        continue;
      }
      RowTaps b;
      b.Init(xp, row, geo, iy, iz);
      {
        const double ax = kDiag * xp[row] - NeighbourSum(geo, x, 0, iy, iz);
        op[row] = rp[row] - ax;
      }
      int ix = 1;
      double s[kSpMVLanes];
      if (b.Full()) {
        for (; ix + kSpMVLanes <= geo.nx - 1; ix += kSpMVLanes) {
          Taps26Row8(b, ix, s);
          for (int l = 0; l < kSpMVLanes; ++l) {
            const std::int64_t i = row + ix + l;
            const double ax = kDiag * xp[i] - s[l];
            op[i] = rp[i] - ax;
          }
        }
      } else {
        for (; ix + kSpMVLanes <= geo.nx - 1; ix += kSpMVLanes) {
          TapsBlockVar<kSpMVLanes>(b, ix, StrideC<1>{}, s);
          for (int l = 0; l < kSpMVLanes; ++l) {
            const std::int64_t i = row + ix + l;
            const double ax = kDiag * xp[i] - s[l];
            op[i] = rp[i] - ax;
          }
        }
      }
      for (; ix + 1 < geo.nx; ++ix) {
        const std::int64_t i = row + ix;
        const double ax = kDiag * xp[i] - TapsVar(b, ix);
        op[i] = rp[i] - ax;
      }
      {
        const std::int64_t i = row + geo.nx - 1;
        const double ax =
            kDiag * xp[i] - NeighbourSum(geo, x, geo.nx - 1, iy, iz);
        op[i] = rp[i] - ax;
      }
    }
  }
}

// y = A x over the flat index range [lo, hi), accumulating sum(x[i] * y[i])
// exactly as DotRange would over the same range: ascending i, one fused
// multiply-add statement shape. Walks row segments so x-interior spans run
// the blocked branch-free path.
double SpMVDotRange(const Geometry& geo, const Vec& x, Vec& y, std::int64_t lo,
                    std::int64_t hi) {
  const double* xp = x.data();
  double* yp = y.data();
  const std::int64_t sz = static_cast<std::int64_t>(geo.nx) * geo.ny;
  double partial = 0.0;
  std::int64_t i = lo;
  while (i < hi) {
    const int iz = static_cast<int>(i / sz);
    const std::int64_t rem = i - static_cast<std::int64_t>(iz) * sz;
    const int iy = static_cast<int>(rem / geo.nx);
    int ix = static_cast<int>(rem - static_cast<std::int64_t>(iy) * geo.nx);
    const std::int64_t seg_end = std::min(hi, i + (geo.nx - ix));
    const std::int64_t row = i - ix;
    if (geo.nx <= 2) {
      for (; i < seg_end; ++i, ++ix) {
        const double yv = kDiag * xp[i] - NeighbourSum(geo, x, ix, iy, iz);
        yp[i] = yv;
        partial += xp[i] * yv;
      }
      continue;
    }
    RowTaps b;
    b.Init(xp, row, geo, iy, iz);
    if (ix == 0) {
      const double yv = kDiag * xp[i] - NeighbourSum(geo, x, 0, iy, iz);
      yp[i] = yv;
      partial += xp[i] * yv;
      ++i;
      ++ix;
    }
    const std::int64_t interior_end = std::min(seg_end, row + geo.nx - 1);
    double s[kSpMVLanes];
    if (b.Full()) {
      for (; i + kSpMVLanes <= interior_end; i += kSpMVLanes, ix += kSpMVLanes) {
        Taps26Row8(b, ix, s);
        for (int l = 0; l < kSpMVLanes; ++l) {
          const double yv = kDiag * xp[i + l] - s[l];
          yp[i + l] = yv;
          partial += xp[i + l] * yv;
        }
      }
    } else {
      for (; i + kSpMVLanes <= interior_end; i += kSpMVLanes, ix += kSpMVLanes) {
        TapsBlockVar<kSpMVLanes>(b, ix, StrideC<1>{}, s);
        for (int l = 0; l < kSpMVLanes; ++l) {
          const double yv = kDiag * xp[i + l] - s[l];
          yp[i + l] = yv;
          partial += xp[i + l] * yv;
        }
      }
    }
    for (; i < interior_end; ++i, ++ix) {
      const double yv = kDiag * xp[i] - TapsVar(b, ix);
      yp[i] = yv;
      partial += xp[i] * yv;
    }
    if (i < seg_end) {
      const double yv =
          kDiag * xp[i] - NeighbourSum(geo, x, geo.nx - 1, iy, iz);
      yp[i] = yv;
      partial += xp[i] * yv;
      ++i;
    }
  }
  return partial;
}

// Relaxes every point of one parity color inside z-planes [z_lo, z_hi).
// Neighbours always belong to other colors, so within a color the reads are
// pre-sweep values: the points are independent, any partitioning or lane
// blocking is bitwise identical to the sequential order.
void RelaxColorPlanes(const Geometry& geo, const Vec& r, Vec& z, int cx,
                      int cy, int cz, int z_lo, int z_hi) {
  double* zp = z.data();
  const double* rp = r.data();
  const auto sy = static_cast<std::int64_t>(geo.nx);
  const std::int64_t sz = sy * geo.ny;
  for (int iz = z_lo + ((cz - z_lo) % 2 + 2) % 2; iz < z_hi; iz += 2) {
    for (int iy = cy; iy < geo.ny; iy += 2) {
      const std::int64_t row = iz * sz + iy * sy;
      if (geo.nx <= 2) {
        for (int ix = cx; ix < geo.nx; ix += 2) {
          const std::int64_t i = row + ix;
          zp[i] = (rp[i] + NeighbourSum(geo, z, ix, iy, iz)) / kDiag;
        }
        continue;
      }
      RowTaps b;
      b.Init(zp, row, geo, iy, iz);
      int ix = cx;
      if (ix == 0) {
        zp[row] = (rp[row] + NeighbourSum(geo, z, 0, iy, iz)) / kDiag;
        ix = 2;
      }
      double s[kColorLanes];
      if (b.Full()) {
        for (; ix + 2 * kColorLanes <= geo.nx; ix += 2 * kColorLanes) {
          TapsBlock26<kColorLanes>(b, ix, StrideC<2>{}, s);
          for (int l = 0; l < kColorLanes; ++l) {
            const std::int64_t i = row + ix + 2 * l;
            zp[i] = (rp[i] + s[l]) / kDiag;
          }
        }
      } else {
        for (; ix + 2 * kColorLanes <= geo.nx; ix += 2 * kColorLanes) {
          TapsBlockVar<kColorLanes>(b, ix, StrideC<2>{}, s);
          for (int l = 0; l < kColorLanes; ++l) {
            const std::int64_t i = row + ix + 2 * l;
            zp[i] = (rp[i] + s[l]) / kDiag;
          }
        }
      }
      for (; ix + 1 < geo.nx; ix += 2) {
        const std::int64_t i = row + ix;
        zp[i] = (rp[i] + TapsVar(b, ix)) / kDiag;
      }
      for (; ix < geo.nx; ix += 2) {
        const std::int64_t i = row + ix;
        zp[i] = (rp[i] + NeighbourSum(geo, z, ix, iy, iz)) / kDiag;
      }
    }
  }
}

void SweepColor(const Geometry& geo, const Vec& r, Vec& z, int color,
                ThreadPool* pool) {
  const int cx = color & 1;
  const int cy = (color >> 1) & 1;
  const int cz = (color >> 2) & 1;
  if (pool == nullptr || geo.nz < kMinPooledPlanes) {
    RelaxColorPlanes(geo, r, z, cx, cy, cz, 0, geo.nz);
    return;
  }
  // Tile over z-planes; within a color all updates are independent, so any
  // plane partitioning gives bit-identical results.
  const std::int64_t grain = 2;
  pool->ParallelFor(0, geo.nz, grain,
                    [&](std::int64_t z_lo, std::int64_t z_hi) {
                      RelaxColorPlanes(geo, r, z, cx, cy, cz,
                                       static_cast<int>(z_lo),
                                       static_cast<int>(z_hi));
                    });
}

// --- Lexicographic Gauss–Seidel, wavefront-blocked ---
//
// The sweep is sequential: each update reads already-updated neighbours, so
// the serial 26-add chain plus the division is a per-point latency floor for
// the row-by-row loop. The wavefront processes K consecutive interior rows
// with row j lagging row j-1 by two points (forward: lane j updates
// ix_j = t - 2j at step t). The K active points are mutually non-adjacent
// (2 apart in x per row step), and every tap a point reads holds exactly the
// value it holds at that moment of the lexicographic order:
//   - row j-1 (above) is updated through ix_j + 2 — its three taps
//     (ix_j - 1 .. ix_j + 1) are all NEW, as lexicographic order requires;
//   - row j+1 (below) is updated only through ix_j - 3 — its three taps are
//     all still OLD, as required;
//   - in-row: ix_j - 1 was written one step earlier (NEW), ix_j + 1 not yet
//     (OLD).
// So the wavefront is bitwise identical to the row-by-row sweep while
// exposing K independent tap chains per step. The backward sweep mirrors it:
// lane j is row iy0 - j at ix_j = (nx-1) - t + 2j. Callers only form groups
// over fully interior rows of interior planes (b.Full() holds).
template <int K, bool Forward>
void GsGroup(const Geometry& geo, const Vec& r, Vec& z, int iy0, int iz) {
  double* zp = z.data();
  const double* rp = r.data();
  const auto sy = static_cast<std::int64_t>(geo.nx);
  const std::int64_t sz = sy * geo.ny;
  const std::int64_t row0 = iz * sz + static_cast<std::int64_t>(iy0) * sy;
  RowTaps b;
  b.Init(zp, row0, geo, iy0, iz);
  const int nx = geo.nx;
  const std::int64_t lane_stride = Forward ? (sy - 2) : (2 - sy);
  const int t_end = nx + 2 * (K - 1);
  const int steady_lo = 2 * K - 1;  // first t with every lane at interior ix
  const int steady_hi = nx - 2;     // last such t
  double s[K];
  for (int t = 0; t < t_end; ++t) {
    if (t >= steady_lo && t <= steady_hi) {
      const std::int64_t o0 = Forward ? t : (nx - 1 - t);
      TapsBlock26<K>(b, o0, lane_stride, s);
      for (int l = 0; l < K; ++l) {
        const std::int64_t i = row0 + o0 + l * lane_stride;
        zp[i] = (rp[i] + s[l]) / kDiag;
      }
      continue;
    }
    // Pipeline fill/drain and row-end steps: per-lane scalar with guards.
    for (int j = 0; j < K; ++j) {
      const int ix = Forward ? (t - 2 * j) : (nx - 1 - t + 2 * j);
      if (ix < 0 || ix >= nx) continue;
      const int iy = Forward ? (iy0 + j) : (iy0 - j);
      const std::int64_t i =
          iz * sz + static_cast<std::int64_t>(iy) * sy + ix;
      double sum;
      if (ix == 0 || ix + 1 == nx) {
        sum = NeighbourSum(geo, z, ix, iy, iz);
      } else {
        sum = Taps26(b, i - row0);
      }
      zp[i] = (rp[i] + sum) / kDiag;
    }
  }
}

// One sequential edge row (boundary plane or the first/last row of an
// interior plane), forward (ascending ix) or backward. The x ends are
// guarded; the x-interior span runs the scalar RowTaps chain — the in-row
// Gauss–Seidel dependency (ix-1 must be written before ix reads it) keeps
// this span serial, but it is a small fraction of the grid.
template <bool Forward>
void GsRowEdge(const Geometry& geo, const Vec& r, Vec& z, int iy, int iz) {
  double* zp = z.data();
  const double* rp = r.data();
  const std::int64_t row = geo.Index(0, iy, iz);
  if (geo.nx <= 2) {
    if constexpr (Forward) {
      for (int ix = 0; ix < geo.nx; ++ix) {
        const std::int64_t i = row + ix;
        zp[i] = (rp[i] + NeighbourSum(geo, z, ix, iy, iz)) / kDiag;
      }
    } else {
      for (int ix = geo.nx - 1; ix >= 0; --ix) {
        const std::int64_t i = row + ix;
        zp[i] = (rp[i] + NeighbourSum(geo, z, ix, iy, iz)) / kDiag;
      }
    }
    return;
  }
  RowTaps b;
  b.Init(zp, row, geo, iy, iz);
  if constexpr (Forward) {
    zp[row] = (rp[row] + NeighbourSum(geo, z, 0, iy, iz)) / kDiag;
    for (int ix = 1; ix + 1 < geo.nx; ++ix) {
      const std::int64_t i = row + ix;
      zp[i] = (rp[i] + TapsVar(b, ix)) / kDiag;
    }
    const std::int64_t i = row + geo.nx - 1;
    zp[i] = (rp[i] + NeighbourSum(geo, z, geo.nx - 1, iy, iz)) / kDiag;
  } else {
    const std::int64_t i = row + geo.nx - 1;
    zp[i] = (rp[i] + NeighbourSum(geo, z, geo.nx - 1, iy, iz)) / kDiag;
    for (int ix = geo.nx - 2; ix >= 1; --ix) {
      const std::int64_t j = row + ix;
      zp[j] = (rp[j] + TapsVar(b, ix)) / kDiag;
    }
    zp[row] = (rp[row] + NeighbourSum(geo, z, 0, iy, iz)) / kDiag;
  }
}

}  // namespace

int NeighbourCount(const Geometry& geo, int ix, int iy, int iz) {
  const auto extent = [](int i, int n) { return (i > 0 ? 1 : 0) + 1 + (i + 1 < n ? 1 : 0); };
  return extent(ix, geo.nx) * extent(iy, geo.ny) * extent(iz, geo.nz) - 1;
}

void SpMV(const Geometry& geo, const Vec& x, Vec& y, ThreadPool* pool) {
  KernelScope scope(Kernel::kSpMV, SpMVFlops(geo));
  if (pool == nullptr || geo.nz < kMinPooledPlanes) {
    SpMVPlanes(geo, x, y, 0, geo.nz);
    return;
  }
  pool->ParallelFor(0, geo.nz, /*grain=*/1,
                    [&](std::int64_t z_lo, std::int64_t z_hi) {
                      SpMVPlanes(geo, x, y, static_cast<int>(z_lo),
                                 static_cast<int>(z_hi));
                    });
}

void SpMVDot(const Geometry& geo, const Vec& x, Vec& y, double* xdoty,
             ThreadPool* pool) {
  KernelScope scope(Kernel::kSpMVDot,
                    SpMVFlops(geo) + DotFlops(static_cast<std::size_t>(
                                         geo.size())));
  const std::int64_t n = geo.size();
  const std::int64_t chunks = ThreadPool::ChunkCount(n, kReduceGrain);
  if (chunks <= 1) {
    *xdoty = SpMVDotRange(geo, x, y, 0, n);
    return;
  }
  // Identical chunking and combine order to Dot(): partials per kReduceGrain
  // chunk, summed in chunk order.
  std::vector<double> partials(static_cast<std::size_t>(chunks), 0.0);
  if (pool == nullptr) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = c * kReduceGrain;
      const std::int64_t hi = std::min(lo + kReduceGrain, n);
      partials[static_cast<std::size_t>(c)] = SpMVDotRange(geo, x, y, lo, hi);
    }
  } else {
    pool->ParallelForChunks(
        0, n, kReduceGrain,
        [&](std::int64_t chunk, std::int64_t lo, std::int64_t hi) {
          partials[static_cast<std::size_t>(chunk)] =
              SpMVDotRange(geo, x, y, lo, hi);
        });
  }
  double sum = 0.0;
  for (const double p : partials) sum += p;
  *xdoty = sum;
}

void SpMVResidual(const Geometry& geo, const Vec& x, const Vec& r, Vec& out,
                  ThreadPool* pool) {
  KernelScope scope(Kernel::kSpMVResidual,
                    SpMVFlops(geo) + WaxpbyFlops(static_cast<std::size_t>(
                                         geo.size())));
  if (pool == nullptr || geo.nz < kMinPooledPlanes) {
    SpMVResidualPlanes(geo, x, r, out, 0, geo.nz);
    return;
  }
  pool->ParallelFor(0, geo.nz, /*grain=*/1,
                    [&](std::int64_t z_lo, std::int64_t z_hi) {
                      SpMVResidualPlanes(geo, x, r, out, static_cast<int>(z_lo),
                                         static_cast<int>(z_hi));
                    });
}

void SymGS(const Geometry& geo, const Vec& r, Vec& z) {
  KernelScope scope(Kernel::kSymGS, SymGSFlops(geo));
  // Forward sweep: lexicographic order, wavefront groups of kGsLanes interior
  // rows (bitwise identical to the row-by-row sweep — see GsGroup).
  for (int iz = 0; iz < geo.nz; ++iz) {
    if (!InteriorPlane(geo, iz)) {
      for (int iy = 0; iy < geo.ny; ++iy) {
        GsRowEdge<true>(geo, r, z, iy, iz);
      }
      continue;
    }
    GsRowEdge<true>(geo, r, z, 0, iz);
    int iy = 1;
    const int last = geo.ny - 2;
    for (; last - iy >= kGsLanes - 1; iy += kGsLanes) {
      GsGroup<kGsLanes, true>(geo, r, z, iy, iz);
    }
    switch (last - iy + 1) {
      case 5: GsGroup<5, true>(geo, r, z, iy, iz); break;
      case 4: GsGroup<4, true>(geo, r, z, iy, iz); break;
      case 3: GsGroup<3, true>(geo, r, z, iy, iz); break;
      case 2: GsGroup<2, true>(geo, r, z, iy, iz); break;
      case 1: GsGroup<1, true>(geo, r, z, iy, iz); break;
      default: break;
    }
    GsRowEdge<true>(geo, r, z, geo.ny - 1, iz);
  }
  // Backward sweep: mirrored order.
  for (int iz = geo.nz - 1; iz >= 0; --iz) {
    if (!InteriorPlane(geo, iz)) {
      for (int iy = geo.ny - 1; iy >= 0; --iy) {
        GsRowEdge<false>(geo, r, z, iy, iz);
      }
      continue;
    }
    GsRowEdge<false>(geo, r, z, geo.ny - 1, iz);
    int iy = geo.ny - 2;
    for (; iy - (kGsLanes - 1) >= 1; iy -= kGsLanes) {
      GsGroup<kGsLanes, false>(geo, r, z, iy, iz);
    }
    switch (iy) {
      case 5: GsGroup<5, false>(geo, r, z, iy, iz); break;
      case 4: GsGroup<4, false>(geo, r, z, iy, iz); break;
      case 3: GsGroup<3, false>(geo, r, z, iy, iz); break;
      case 2: GsGroup<2, false>(geo, r, z, iy, iz); break;
      case 1: GsGroup<1, false>(geo, r, z, iy, iz); break;
      default: break;
    }
    GsRowEdge<false>(geo, r, z, 0, iz);
  }
}

void SymGSColored(const Geometry& geo, const Vec& r, Vec& z,
                  ThreadPool* pool) {
  KernelScope scope(Kernel::kSymGSColored, SymGSFlops(geo));
  for (int color = 0; color < 8; ++color) {
    SweepColor(geo, r, z, color, pool);
  }
  for (int color = 7; color >= 0; --color) {
    SweepColor(geo, r, z, color, pool);
  }
}

std::uint64_t NonZeros(const Geometry& geo) { return geo.NonZeros(); }

std::uint64_t SpMVFlops(const Geometry& geo) { return 2ull * geo.NonZeros(); }

std::uint64_t SymGSFlops(const Geometry& geo) { return 4ull * geo.NonZeros(); }

}  // namespace eco::hpcg
