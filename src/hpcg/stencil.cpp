#include "hpcg/stencil.hpp"

namespace eco::hpcg {
namespace {

constexpr double kDiag = 26.0;

// Sums x over the (up to 26) neighbours of (ix,iy,iz).
inline double NeighbourSum(const Geometry& geo, const Vec& x, int ix, int iy,
                           int iz) {
  double sum = 0.0;
  for (int dz = -1; dz <= 1; ++dz) {
    const int z = iz + dz;
    if (z < 0 || z >= geo.nz) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = iy + dy;
      if (y < 0 || y >= geo.ny) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int xx = ix + dx;
        if (xx < 0 || xx >= geo.nx) continue;
        sum += x[geo.Index(xx, y, z)];
      }
    }
  }
  return sum;
}

void SpMVPlanes(const Geometry& geo, const Vec& x, Vec& y, int z_lo,
                int z_hi) {
  for (int iz = z_lo; iz < z_hi; ++iz) {
    for (int iy = 0; iy < geo.ny; ++iy) {
      for (int ix = 0; ix < geo.nx; ++ix) {
        const std::int64_t i = geo.Index(ix, iy, iz);
        y[i] = kDiag * x[i] - NeighbourSum(geo, x, ix, iy, iz);
      }
    }
  }
}

// Relaxes every point of one parity color inside z-planes [z_lo, z_hi).
void RelaxColorPlanes(const Geometry& geo, const Vec& r, Vec& z, int cx,
                      int cy, int cz, int z_lo, int z_hi) {
  for (int iz = z_lo + ((cz - z_lo) % 2 + 2) % 2; iz < z_hi; iz += 2) {
    for (int iy = cy; iy < geo.ny; iy += 2) {
      for (int ix = cx; ix < geo.nx; ix += 2) {
        const std::int64_t i = geo.Index(ix, iy, iz);
        z[i] = (r[i] + NeighbourSum(geo, z, ix, iy, iz)) / kDiag;
      }
    }
  }
}

void SweepColor(const Geometry& geo, const Vec& r, Vec& z, int color,
                ThreadPool* pool) {
  const int cx = color & 1;
  const int cy = (color >> 1) & 1;
  const int cz = (color >> 2) & 1;
  if (pool == nullptr || geo.nz <= 2) {
    RelaxColorPlanes(geo, r, z, cx, cy, cz, 0, geo.nz);
    return;
  }
  // Tile over z-planes; within a color all updates are independent, so any
  // plane partitioning gives bit-identical results.
  const std::int64_t grain = 2;
  pool->ParallelFor(0, geo.nz, grain,
                    [&](std::int64_t z_lo, std::int64_t z_hi) {
                      RelaxColorPlanes(geo, r, z, cx, cy, cz,
                                       static_cast<int>(z_lo),
                                       static_cast<int>(z_hi));
                    });
}

}  // namespace

int NeighbourCount(const Geometry& geo, int ix, int iy, int iz) {
  const auto extent = [](int i, int n) { return (i > 0 ? 1 : 0) + 1 + (i + 1 < n ? 1 : 0); };
  return extent(ix, geo.nx) * extent(iy, geo.ny) * extent(iz, geo.nz) - 1;
}

void SpMV(const Geometry& geo, const Vec& x, Vec& y, ThreadPool* pool) {
  if (pool == nullptr || geo.nz < 2) {
    SpMVPlanes(geo, x, y, 0, geo.nz);
    return;
  }
  pool->ParallelFor(0, geo.nz, /*grain=*/1,
                    [&](std::int64_t z_lo, std::int64_t z_hi) {
                      SpMVPlanes(geo, x, y, static_cast<int>(z_lo),
                                 static_cast<int>(z_hi));
                    });
}

void SymGS(const Geometry& geo, const Vec& r, Vec& z) {
  // Forward sweep.
  for (int iz = 0; iz < geo.nz; ++iz) {
    for (int iy = 0; iy < geo.ny; ++iy) {
      for (int ix = 0; ix < geo.nx; ++ix) {
        const std::int64_t i = geo.Index(ix, iy, iz);
        z[i] = (r[i] + NeighbourSum(geo, z, ix, iy, iz)) / kDiag;
      }
    }
  }
  // Backward sweep.
  for (int iz = geo.nz - 1; iz >= 0; --iz) {
    for (int iy = geo.ny - 1; iy >= 0; --iy) {
      for (int ix = geo.nx - 1; ix >= 0; --ix) {
        const std::int64_t i = geo.Index(ix, iy, iz);
        z[i] = (r[i] + NeighbourSum(geo, z, ix, iy, iz)) / kDiag;
      }
    }
  }
}

void SymGSColored(const Geometry& geo, const Vec& r, Vec& z,
                  ThreadPool* pool) {
  for (int color = 0; color < 8; ++color) SweepColor(geo, r, z, color, pool);
  for (int color = 7; color >= 0; --color) SweepColor(geo, r, z, color, pool);
}

std::uint64_t NonZeros(const Geometry& geo) {
  std::uint64_t nnz = 0;
  for (int iz = 0; iz < geo.nz; ++iz) {
    for (int iy = 0; iy < geo.ny; ++iy) {
      for (int ix = 0; ix < geo.nx; ++ix) {
        nnz += 1 + static_cast<std::uint64_t>(NeighbourCount(geo, ix, iy, iz));
      }
    }
  }
  return nnz;
}

std::uint64_t SpMVFlops(const Geometry& geo) { return 2ull * NonZeros(geo); }

std::uint64_t SymGSFlops(const Geometry& geo) { return 4ull * NonZeros(geo); }

}  // namespace eco::hpcg
