// Public stencil kernels: telemetry scope + pool tiling + runtime ISA
// dispatch. The per-tier inner loops live in stencil_tiers.inc, compiled
// once per tier by the stencil_tier_*.cpp TUs and reached through
// detail::ActiveOps() (see dispatch.hpp for the tier-selection and
// determinism contracts).
#include "hpcg/stencil.hpp"

#include <algorithm>

#include "hpcg/dispatch.hpp"
#include "hpcg/kernel_telemetry.hpp"

namespace eco::hpcg {

int NeighbourCount(const Geometry& geo, int ix, int iy, int iz) {
  const auto extent = [](int i, int n) { return (i > 0 ? 1 : 0) + 1 + (i + 1 < n ? 1 : 0); };
  return extent(ix, geo.nx) * extent(iy, geo.ny) * extent(iz, geo.nz) - 1;
}

void SpMV(const Geometry& geo, const Vec& x, Vec& y, ThreadPool* pool) {
  KernelScope scope(Kernel::kSpMV, SpMVFlops(geo));
  const detail::KernelOps& ops = detail::ActiveOps();
  if (pool == nullptr || geo.nz < kMinPooledPlanes) {
    ops.spmv_planes(geo, x, y, 0, geo.nz);
    return;
  }
  pool->ParallelFor(0, geo.nz, ZSlabGrain(geo),
                    [&](std::int64_t z_lo, std::int64_t z_hi) {
                      ops.spmv_planes(geo, x, y, static_cast<int>(z_lo),
                                      static_cast<int>(z_hi));
                    });
}

void SpMVDot(const Geometry& geo, const Vec& x, Vec& y, double* xdoty,
             ThreadPool* pool) {
  KernelScope scope(Kernel::kSpMVDot,
                    SpMVFlops(geo) + DotFlops(static_cast<std::size_t>(
                                         geo.size())));
  const detail::KernelOps& ops = detail::ActiveOps();
  const std::int64_t n = geo.size();
  const std::int64_t chunks = ThreadPool::ChunkCount(n, kReduceGrain);
  if (chunks <= 1) {
    *xdoty = ops.spmv_dot_range(geo, x, y, 0, n);
    return;
  }
  // Identical chunking and combine order to Dot(): partials per kReduceGrain
  // chunk, summed in chunk order.
  std::vector<double> partials(static_cast<std::size_t>(chunks), 0.0);
  if (pool == nullptr) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = c * kReduceGrain;
      const std::int64_t hi = std::min(lo + kReduceGrain, n);
      partials[static_cast<std::size_t>(c)] =
          ops.spmv_dot_range(geo, x, y, lo, hi);
    }
  } else {
    pool->ParallelForChunks(
        0, n, kReduceGrain,
        [&](std::int64_t chunk, std::int64_t lo, std::int64_t hi) {
          partials[static_cast<std::size_t>(chunk)] =
              ops.spmv_dot_range(geo, x, y, lo, hi);
        });
  }
  double sum = 0.0;
  for (const double p : partials) sum += p;
  *xdoty = sum;
}

void SpMVResidual(const Geometry& geo, const Vec& x, const Vec& r, Vec& out,
                  ThreadPool* pool) {
  KernelScope scope(Kernel::kSpMVResidual,
                    SpMVFlops(geo) + WaxpbyFlops(static_cast<std::size_t>(
                                         geo.size())));
  const detail::KernelOps& ops = detail::ActiveOps();
  if (pool == nullptr || geo.nz < kMinPooledPlanes) {
    ops.spmv_residual_planes(geo, x, r, out, 0, geo.nz);
    return;
  }
  pool->ParallelFor(0, geo.nz, ZSlabGrain(geo),
                    [&](std::int64_t z_lo, std::int64_t z_hi) {
                      ops.spmv_residual_planes(geo, x, r, out,
                                               static_cast<int>(z_lo),
                                               static_cast<int>(z_hi));
                    });
}

void SymGS(const Geometry& geo, const Vec& r, Vec& z) {
  KernelScope scope(Kernel::kSymGS, SymGSFlops(geo));
  detail::ActiveOps().symgs(geo, r, z);
}

namespace {

void SweepColor(const Geometry& geo, const Vec& r, Vec& z, int color,
                ThreadPool* pool) {
  const detail::KernelOps& ops = detail::ActiveOps();
  const int cx = color & 1;
  const int cy = (color >> 1) & 1;
  const int cz = (color >> 2) & 1;
  if (pool == nullptr || geo.nz < kMinPooledPlanes) {
    ops.relax_color_planes(geo, r, z, cx, cy, cz, 0, geo.nz);
    return;
  }
  // Slab over z-planes; within a color all updates are independent, so any
  // plane partitioning gives bit-identical results. Floor of 2 planes: a
  // color only touches every other plane.
  const std::int64_t grain = std::max<std::int64_t>(2, ZSlabGrain(geo));
  pool->ParallelFor(0, geo.nz, grain,
                    [&](std::int64_t z_lo, std::int64_t z_hi) {
                      ops.relax_color_planes(geo, r, z, cx, cy, cz,
                                             static_cast<int>(z_lo),
                                             static_cast<int>(z_hi));
                    });
}

}  // namespace

void SymGSColored(const Geometry& geo, const Vec& r, Vec& z,
                  ThreadPool* pool) {
  KernelScope scope(Kernel::kSymGSColored, SymGSFlops(geo));
  for (int color = 0; color < 8; ++color) {
    SweepColor(geo, r, z, color, pool);
  }
  for (int color = 7; color >= 0; --color) {
    SweepColor(geo, r, z, color, pool);
  }
}

std::uint64_t NonZeros(const Geometry& geo) { return geo.NonZeros(); }

std::uint64_t SpMVFlops(const Geometry& geo) { return 2ull * geo.NonZeros(); }

std::uint64_t SymGSFlops(const Geometry& geo) { return 4ull * geo.NonZeros(); }

}  // namespace eco::hpcg
