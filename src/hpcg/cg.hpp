// Preconditioned conjugate-gradient driver — the computational core of HPCG
// ("a simple additive Schwarz, symmetric Gauss-Seidel preconditioned
// conjugate gradient solver", paper §3.2).
#pragma once

#include <cstdint>

#include "hpcg/geometry.hpp"
#include "hpcg/multigrid.hpp"
#include "hpcg/vector_ops.hpp"

namespace eco::hpcg {

struct CgOptions {
  int max_iterations = 50;
  double tolerance = 0.0;  // 0 => run all iterations, like HPCG's timed sets
  bool preconditioned = true;
  // Threading. With a pool, SpMV / Dot / Waxpby tile across it with results
  // bit-identical to serial (fixed-grain chunked reductions). colored_symgs
  // additionally switches the smoother to the parallel multicolor sweep,
  // which changes the smoother's update order (still deterministic at any
  // pool size, but not bitwise-equal to the lexicographic serial smoother).
  ThreadPool* pool = nullptr;
  bool colored_symgs = false;
  // Fused single-pass kernels: SpMV+dot for p'Ap and waxpby+dot for the
  // residual update + norm², one memory sweep each instead of two. Bitwise
  // identical to the unfused sequence at every pool size — the fused ops
  // keep the exact kReduceGrain chunk-ordered partial association
  // (tests/test_hpcg_kernels.cpp proves the residual histories match).
  // false keeps the unfused sequence, the oracle for equivalence tests.
  bool fused_kernels = true;
};

struct CgResult {
  int iterations = 0;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  bool converged = false;        // only meaningful when tolerance > 0
  std::uint64_t flops = 0;
  // ||r|| after setup ([0] == initial_residual) and after every iteration —
  // the bitwise fingerprint equivalence tests compare across kernel paths
  // and pool sizes.
  std::vector<double> residual_history;
  double seconds = 0.0;          // wall time of the solve
  [[nodiscard]] double Gflops() const {
    return seconds > 0.0 ? static_cast<double>(flops) / seconds / 1e9 : 0.0;
  }
};

class CgSolver {
 public:
  explicit CgSolver(const Geometry& geo, CgOptions options = {});

  // Solves A x = b starting from x (usually zero). Overwrites x.
  CgResult Solve(const Vec& b, Vec& x);

  [[nodiscard]] const Geometry& geometry() const { return geo_; }

 private:
  Geometry geo_;
  CgOptions options_;
  Multigrid mg_;
  Vec r_, z_, p_, ap_;
};

}  // namespace eco::hpcg
