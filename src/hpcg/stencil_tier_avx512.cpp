// AVX-512 tier: eight-wide vectors (32-lane stride-1 blocks) with the same
// Hsum27 strided path as AVX2 (the 256-bit masked loads stay the right tool
// — per-point horizontal sums don't widen). Compiled with
// -mavx512f -mavx512dq -mavx512vl -mavx512bw -ffp-contract=off; degrades to
// an unsupported tier when the toolchain cannot target it.
#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)
#define ECO_TIER_NS tier_avx512
#define ECO_TIER_W 8
#define ECO_TIER_HSUM 1
#define ECO_TIER_GETTER GetKernelOps_avx512
#include "hpcg/stencil_tiers.inc"
#else
#include "hpcg/dispatch.hpp"

namespace eco::hpcg::detail {
const KernelOps* GetKernelOps_avx512() { return nullptr; }
}  // namespace eco::hpcg::detail
#endif
