#include "hpcg/cg.hpp"

#include <chrono>
#include <cmath>

#include "hpcg/stencil.hpp"

namespace eco::hpcg {

CgSolver::CgSolver(const Geometry& geo, CgOptions options)
    : geo_(geo),
      options_(options),
      mg_(geo, 4, options.pool, options.colored_symgs) {
  const auto n = static_cast<std::size_t>(geo.size());
  r_.assign(n, 0.0);
  z_.assign(n, 0.0);
  p_.assign(n, 0.0);
  ap_.assign(n, 0.0);
}

CgResult CgSolver::Solve(const Vec& b, Vec& x) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  CgResult result;
  const std::size_t n = b.size();
  std::uint64_t flops = 0;
  ThreadPool* pool = options_.pool;

  // r = b - A x
  double norm_r;
  if (options_.fused_kernels) {
    SpMV(geo_, x, ap_, pool);
    norm_r = std::sqrt(FusedWaxpbyDot(1.0, b, -1.0, ap_, r_, pool));
  } else {
    SpMV(geo_, x, ap_, pool);
    Waxpby(1.0, b, -1.0, ap_, r_, pool);
    norm_r = Norm2(r_, pool);
  }
  flops += SpMVFlops(geo_) + WaxpbyFlops(n) + DotFlops(n);
  result.initial_residual = norm_r;
  result.residual_history.push_back(norm_r);
  const double stop = options_.tolerance * norm_r;

  double rtz = 0.0;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (options_.tolerance > 0.0 && norm_r <= stop) {
      result.converged = true;
      break;
    }
    // z = M^{-1} r
    if (options_.preconditioned) {
      mg_.Apply(r_, z_, flops);
    } else {
      z_ = r_;
    }

    const double rtz_old = rtz;
    rtz = Dot(r_, z_, pool);
    flops += DotFlops(n);

    if (iter == 0) {
      p_ = z_;
    } else {
      const double beta = rtz / rtz_old;
      Waxpby(1.0, z_, beta, p_, p_, pool);
      flops += WaxpbyFlops(n);
    }

    double pap;
    if (options_.fused_kernels) {
      SpMVDot(geo_, p_, ap_, &pap, pool);
    } else {
      SpMV(geo_, p_, ap_, pool);
      pap = Dot(p_, ap_, pool);
    }
    flops += SpMVFlops(geo_) + DotFlops(n);
    if (pap <= 0.0) break;  // loss of positive definiteness (numerical)

    const double alpha = rtz / pap;
    Waxpby(1.0, x, alpha, p_, x, pool);
    if (options_.fused_kernels) {
      norm_r = std::sqrt(FusedWaxpbyDot(1.0, r_, -alpha, ap_, r_, pool));
    } else {
      Waxpby(1.0, r_, -alpha, ap_, r_, pool);
      norm_r = Norm2(r_, pool);
    }
    flops += 2 * WaxpbyFlops(n) + DotFlops(n);
    result.residual_history.push_back(norm_r);
    ++result.iterations;
  }

  if (options_.tolerance > 0.0 && norm_r <= stop) result.converged = true;
  result.final_residual = norm_r;
  result.flops = flops;
  result.seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

}  // namespace eco::hpcg
