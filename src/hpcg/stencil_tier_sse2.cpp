// SSE2 tier: two-wide generic vectors, the x86-64 baseline build — no extra
// -m flags, so this TU also compiles (to whatever the target lowers the
// generic vectors to) on non-x86 hosts. This is the default dispatch tier;
// it is bitwise identical to ref:: on every kernel and its behaviour is the
// pre-dispatch kernel core, byte for byte.
#define ECO_TIER_NS tier_sse2
#define ECO_TIER_W 2
#define ECO_TIER_GETTER GetKernelOps_sse2
#include "hpcg/stencil_tiers.inc"
