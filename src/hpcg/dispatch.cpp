#include "hpcg/dispatch.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/log.hpp"

namespace eco::hpcg {
namespace {

// -1: not yet resolved. Once resolved (lazily from ECO_FORCE_ISA, or
// explicitly via ForceIsaTier) the value is the active tier. The first
// resolution can race benignly: every racer computes the same value.
std::atomic<int> g_active_tier{-1};

// -1: unresolved; 0: active tier is the compiled-in default; 1: the tier
// was pinned (ECO_FORCE_ISA or ForceIsaTier). Resolved together with
// g_active_tier; the same benign race applies.
std::atomic<int> g_tier_pinned{-1};

bool CpuSupports(IsaTier tier) {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  switch (tier) {
    case IsaTier::kScalar:
    case IsaTier::kSse2:
      return true;
    case IsaTier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case IsaTier::kAvx512:
      // The wide TU is built with f+dq+vl (+bw); require the same set the
      // code may emit, not just the foundation.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
  }
  return false;
#else
  // Non-x86: the scalar and generic-vector sse2 tiers are portable C++;
  // the wide TUs compile to stubs (GetKernelOps_* == nullptr).
  return tier == IsaTier::kScalar || tier == IsaTier::kSse2;
#endif
}

const detail::KernelOps* TierOps(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return detail::GetKernelOps_scalar();
    case IsaTier::kSse2:
      return detail::GetKernelOps_sse2();
    case IsaTier::kAvx2:
      return detail::GetKernelOps_avx2();
    case IsaTier::kAvx512:
      return detail::GetKernelOps_avx512();
  }
  return nullptr;
}

// Clamp an arbitrary request onto a runnable tier: walk down from the
// request until supported (scalar always is).
IsaTier ClampToSupported(IsaTier requested) {
  int t = static_cast<int>(requested);
  while (t > 0 && !IsaTierSupported(static_cast<IsaTier>(t))) --t;
  return static_cast<IsaTier>(t);
}

IsaTier ResolveFromEnv(bool* pinned) {
  *pinned = false;
  const char* env = std::getenv("ECO_FORCE_ISA");
  if (env == nullptr || *env == '\0') return kDefaultIsaTier;
  IsaTier requested;
  if (!ParseIsaTier(env, &requested)) {
    ECO_WARN << "ECO_FORCE_ISA='" << env
             << "' not recognised (scalar|sse2|avx2|avx512|native); using "
             << IsaTierName(kDefaultIsaTier);
    return kDefaultIsaTier;
  }
  *pinned = true;
  const IsaTier effective = ClampToSupported(requested);
  if (effective != requested) {
    ECO_WARN << "ECO_FORCE_ISA=" << IsaTierName(requested)
             << " not supported on this machine; clamping to "
             << IsaTierName(effective);
  }
  return effective;
}

}  // namespace

const char* IsaTierName(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kSse2:
      return "sse2";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseIsaTier(std::string_view name, IsaTier* out) {
  if (name == "scalar") {
    *out = IsaTier::kScalar;
  } else if (name == "sse2") {
    *out = IsaTier::kSse2;
  } else if (name == "avx2") {
    *out = IsaTier::kAvx2;
  } else if (name == "avx512") {
    *out = IsaTier::kAvx512;
  } else if (name == "native" || name == "best" || name == "auto") {
    *out = BestSupportedIsaTier();
  } else {
    return false;
  }
  return true;
}

bool IsaTierSupported(IsaTier tier) {
  return CpuSupports(tier) && TierOps(tier) != nullptr;
}

IsaTier BestSupportedIsaTier() {
  return ClampToSupported(IsaTier::kAvx512);
}

IsaTier ActiveIsaTier() {
  const int cached = g_active_tier.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<IsaTier>(cached);
  bool pinned = false;
  const IsaTier resolved = ResolveFromEnv(&pinned);
  g_tier_pinned.store(pinned ? 1 : 0, std::memory_order_release);
  g_active_tier.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

bool IsaTierPinned() {
  ActiveIsaTier();  // resolve the env on first use
  return g_tier_pinned.load(std::memory_order_acquire) == 1;
}

IsaTier ForceIsaTier(IsaTier tier) {
  const IsaTier effective = ClampToSupported(tier);
  g_tier_pinned.store(1, std::memory_order_release);
  g_active_tier.store(static_cast<int>(effective), std::memory_order_release);
  return effective;
}

std::int64_t ZSlabGrain(const Geometry& geo) {
  // ~1 MiB of plane data per slab: big enough that the (S+2)/S halo
  // re-read ratio approaches 1, small enough that slab + halos stay L2-ish.
  // Capped at ceil(nz/8) so a pool always sees ~8 tasks to balance, and at
  // 16 planes so huge thin grids don't serialize.
  constexpr std::int64_t kSlabTargetBytes = std::int64_t{1} << 20;
  const std::int64_t plane_bytes =
      static_cast<std::int64_t>(geo.nx) * geo.ny * 8;
  std::int64_t slab = kSlabTargetBytes / std::max<std::int64_t>(1, plane_bytes);
  slab = std::min(slab, static_cast<std::int64_t>((geo.nz + 7) / 8));
  return std::clamp<std::int64_t>(slab, 1, 16);
}

namespace detail {

const KernelOps& ActiveOps() {
  const KernelOps* ops = TierOps(ActiveIsaTier());
  if (ops != nullptr) return *ops;
  // Unreachable when selection went through ClampToSupported; defend against
  // a torn build anyway.
  return *GetKernelOps_scalar();
}

}  // namespace detail
}  // namespace eco::hpcg
