// The pre-optimization stencil kernels, kept verbatim as the bitwise oracle
// for the branch-free interior/boundary paths in stencil.cpp. Serial only,
// O(grid) counters — exactly the code the optimized kernels must reproduce
// bit-for-bit (tests/test_hpcg_kernels.cpp) and beat >= 2x on throughput
// (bench_p4_kernel_roofline).
#include "hpcg/stencil.hpp"

namespace eco::hpcg::ref {
namespace {

constexpr double kDiag = 26.0;

// Sums x over the (up to 26) neighbours of (ix,iy,iz).
inline double NeighbourSum(const Geometry& geo, const Vec& x, int ix, int iy,
                           int iz) {
  double sum = 0.0;
  for (int dz = -1; dz <= 1; ++dz) {
    const int z = iz + dz;
    if (z < 0 || z >= geo.nz) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = iy + dy;
      if (y < 0 || y >= geo.ny) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int xx = ix + dx;
        if (xx < 0 || xx >= geo.nx) continue;
        sum += x[geo.Index(xx, y, z)];
      }
    }
  }
  return sum;
}

// Relaxes every point of one parity color (serial, whole grid).
void RelaxColor(const Geometry& geo, const Vec& r, Vec& z, int color) {
  const int cx = color & 1;
  const int cy = (color >> 1) & 1;
  const int cz = (color >> 2) & 1;
  for (int iz = cz; iz < geo.nz; iz += 2) {
    for (int iy = cy; iy < geo.ny; iy += 2) {
      for (int ix = cx; ix < geo.nx; ix += 2) {
        const std::int64_t i = geo.Index(ix, iy, iz);
        z[i] = (r[i] + NeighbourSum(geo, z, ix, iy, iz)) / kDiag;
      }
    }
  }
}

}  // namespace

void SpMV(const Geometry& geo, const Vec& x, Vec& y) {
  for (int iz = 0; iz < geo.nz; ++iz) {
    for (int iy = 0; iy < geo.ny; ++iy) {
      for (int ix = 0; ix < geo.nx; ++ix) {
        const std::int64_t i = geo.Index(ix, iy, iz);
        y[i] = kDiag * x[i] - NeighbourSum(geo, x, ix, iy, iz);
      }
    }
  }
}

void SymGS(const Geometry& geo, const Vec& r, Vec& z) {
  // Forward sweep.
  for (int iz = 0; iz < geo.nz; ++iz) {
    for (int iy = 0; iy < geo.ny; ++iy) {
      for (int ix = 0; ix < geo.nx; ++ix) {
        const std::int64_t i = geo.Index(ix, iy, iz);
        z[i] = (r[i] + NeighbourSum(geo, z, ix, iy, iz)) / kDiag;
      }
    }
  }
  // Backward sweep.
  for (int iz = geo.nz - 1; iz >= 0; --iz) {
    for (int iy = geo.ny - 1; iy >= 0; --iy) {
      for (int ix = geo.nx - 1; ix >= 0; --ix) {
        const std::int64_t i = geo.Index(ix, iy, iz);
        z[i] = (r[i] + NeighbourSum(geo, z, ix, iy, iz)) / kDiag;
      }
    }
  }
}

void SymGSColored(const Geometry& geo, const Vec& r, Vec& z) {
  for (int color = 0; color < 8; ++color) RelaxColor(geo, r, z, color);
  for (int color = 7; color >= 0; --color) RelaxColor(geo, r, z, color);
}

std::uint64_t NonZeros(const Geometry& geo) {
  std::uint64_t nnz = 0;
  for (int iz = 0; iz < geo.nz; ++iz) {
    for (int iy = 0; iy < geo.ny; ++iy) {
      for (int ix = 0; ix < geo.nx; ++ix) {
        nnz += 1 + static_cast<std::uint64_t>(NeighbourCount(geo, ix, iy, iz));
      }
    }
  }
  return nnz;
}

}  // namespace eco::hpcg::ref
