// Dense vector kernels (BLAS-1 subset) with FLOP accounting.
//
// Every kernel returns/accumulates its FLOP count so the solver can report a
// genuine GFLOP/s rating like the reference HPCG does.
//
// Threading: kernels take an optional ThreadPool. Dot always reduces over
// fixed-size chunks (kReduceGrain) whose partials are combined in chunk
// order, so the serial and pooled paths produce bit-identical sums at any
// pool size. Waxpby is elementwise and trivially identical.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"

namespace eco::hpcg {

using Vec = std::vector<double>;

// Fixed reduction grain: determinism requires the chunk decomposition to be
// a function of n alone, never of the pool size.
inline constexpr std::int64_t kReduceGrain = 4096;

// y'x. 2n flops.
double Dot(const Vec& x, const Vec& y, ThreadPool* pool = nullptr);
// w = alpha*x + beta*y. 3n flops (HPCG convention).
void Waxpby(double alpha, const Vec& x, double beta, const Vec& y, Vec& w,
            ThreadPool* pool = nullptr);
// Fused w = alpha*x + beta*y returning w'w from the same pass — CG's
// residual update + norm² in one memory sweep instead of two. Keeps the
// kReduceGrain chunk-ordered partial association and the exact statement
// shapes of Waxpby and Dot, so the result is bitwise identical to Waxpby
// followed by Dot(w, w) at any pool size. Alias-safe for w == x or w == y
// (elementwise read-then-write, like Waxpby).
double FusedWaxpbyDot(double alpha, const Vec& x, double beta, const Vec& y,
                      Vec& w, ThreadPool* pool = nullptr);
void Fill(Vec& x, double value);
// Euclidean norm via Dot.
double Norm2(const Vec& x, ThreadPool* pool = nullptr);

// FLOP costs of the kernels, for the solver's rating.
inline std::uint64_t DotFlops(std::size_t n) { return 2ull * n; }
inline std::uint64_t WaxpbyFlops(std::size_t n) { return 3ull * n; }

}  // namespace eco::hpcg
