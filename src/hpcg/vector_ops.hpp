// Dense vector kernels (BLAS-1 subset) with FLOP accounting.
//
// Every kernel returns/accumulates its FLOP count so the solver can report a
// genuine GFLOP/s rating like the reference HPCG does.
#pragma once

#include <cstdint>
#include <vector>

namespace eco::hpcg {

using Vec = std::vector<double>;

// y'x. 2n flops.
double Dot(const Vec& x, const Vec& y);
// w = alpha*x + beta*y. 3n flops (HPCG convention).
void Waxpby(double alpha, const Vec& x, double beta, const Vec& y, Vec& w);
void Fill(Vec& x, double value);
// Euclidean norm via Dot.
double Norm2(const Vec& x);

// FLOP costs of the kernels, for the solver's rating.
inline std::uint64_t DotFlops(std::size_t n) { return 2ull * n; }
inline std::uint64_t WaxpbyFlops(std::size_t n) { return 3ull * n; }

}  // namespace eco::hpcg
