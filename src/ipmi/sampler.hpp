// Periodic IPMI sampling into a power/temperature trace.
//
// Chronus samples the BMC at a 2-3 second cadence while a benchmark job runs
// (§3.1.2 step 2; §5.2 used 3 s). The trace supports the aggregates the
// paper reports in Table 2: average system/CPU watts, total kJ (trapezoidal
// energy integral), average CPU temperature, and runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_clock.hpp"
#include "ipmi/bmc.hpp"

namespace eco::ipmi {

struct PowerSample {
  SimTime t = 0.0;
  double system_watts = 0.0;
  double cpu_watts = 0.0;
  double cpu_temp_celsius = 0.0;
};

struct TraceStats {
  double avg_system_watts = 0.0;
  double avg_cpu_watts = 0.0;
  double avg_cpu_temp = 0.0;
  double system_kilojoules = 0.0;
  double cpu_kilojoules = 0.0;
  double duration_seconds = 0.0;
  std::size_t samples = 0;
};

class PowerTrace {
 public:
  void Add(PowerSample sample) { samples_.push_back(sample); }
  void Clear() { samples_.clear(); }
  [[nodiscard]] const std::vector<PowerSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] TraceStats Stats() const;

  // Writes "t,system_watts,cpu_watts,cpu_temp" rows (header included) —
  // the Figure 15 series in a plottable form.
  [[nodiscard]] std::string ToCsv() const;

 private:
  std::vector<PowerSample> samples_;
};

// Event-queue-driven sampler: while running, reads the BMC every
// `interval_s` and appends to its trace.
class IpmiSampler {
 public:
  IpmiSampler(EventQueue* queue, BmcSimulator* bmc, double interval_s = 3.0);

  // Takes an immediate sample and schedules subsequent ones.
  void Start();
  void Stop();
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] const PowerTrace& trace() const { return trace_; }
  [[nodiscard]] PowerTrace& trace() { return trace_; }

 private:
  void SampleAndReschedule(SimTime now);

  EventQueue* queue_;
  BmcSimulator* bmc_;
  double interval_s_;
  bool running_ = false;
  std::uint64_t pending_event_ = 0;
  PowerTrace trace_;
};

}  // namespace eco::ipmi
