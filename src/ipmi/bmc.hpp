// Baseboard Management Controller (BMC) simulator.
//
// The paper samples node power through IPMI from the BMC (§3.1.2 step 2,
// §5.1): `ipmitool sdr list | grep Total` returning e.g. "Total_Power | 258
// Watts". The BMC measures the DC side after the PSUs, quantised to whole
// watts and with mild sensor noise; a reference wattmeter on the AC side
// reads ~6 % higher because of PSU conversion losses (Eq. 1 reports a 5.96 %
// difference). Both instruments are modelled here against a PowerSource —
// the simulated node implements that interface.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace eco::ipmi {

// Instantaneous ground truth the instruments observe. Implemented by the
// simulated node (slurm::NodeSim).
class PowerSource {
 public:
  virtual ~PowerSource() = default;
  // True DC system draw in watts at the current simulation instant.
  [[nodiscard]] virtual double SystemWatts() const = 0;
  [[nodiscard]] virtual double CpuWatts() const = 0;
  [[nodiscard]] virtual double CpuTempCelsius() const = 0;
};

struct SensorReading {
  std::string name;
  double value = 0.0;
  std::string unit;
};

struct BmcParams {
  double noise_stddev_watts = 1.2;
  double temp_noise_stddev = 0.3;
  // Multiplicative sensor calibration error (1.0 = perfect).
  double gain = 1.0;
  bool quantize_watts = true;  // IPMI reports whole watts
};

class BmcSimulator {
 public:
  BmcSimulator(const PowerSource* source, BmcParams params, Rng rng);

  // Individual sensor reads (one IPMI transaction each).
  [[nodiscard]] SensorReading ReadTotalPower();
  [[nodiscard]] SensorReading ReadCpuPower();
  [[nodiscard]] SensorReading ReadCpuTemp();

  // `ipmitool sdr list`-style dump of all sensors.
  [[nodiscard]] std::vector<SensorReading> SdrList();
  // Rendered like the paper's Figure 13 terminal output.
  [[nodiscard]] static std::string RenderSdr(const std::vector<SensorReading>& sdr);

 private:
  double Quantize(double watts) const;

  const PowerSource* source_;
  BmcParams params_;
  Rng rng_;
};

struct WattmeterParams {
  int psu_count = 2;
  // AC->DC conversion efficiency; the wattmeter reads DC/efficiency.
  double psu_efficiency = 0.9437;
  // Load imbalance between the two PSUs (the paper measured 129.7 W vs
  // 143.7 W on the same box).
  double psu_imbalance = 0.051;
};

// AC-side digital wattmeter — the §5.1 ground-truth instrument.
class Wattmeter {
 public:
  Wattmeter(const PowerSource* source, WattmeterParams params);

  // Total AC draw across both PSUs.
  [[nodiscard]] double TotalAcWatts() const;
  // Per-PSU readings (sums to TotalAcWatts()).
  [[nodiscard]] std::vector<double> PerPsuWatts() const;

 private:
  const PowerSource* source_;
  WattmeterParams params_;
};

}  // namespace eco::ipmi
