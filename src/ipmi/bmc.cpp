#include "ipmi/bmc.hpp"

#include <cmath>
#include <cstdio>

namespace eco::ipmi {

BmcSimulator::BmcSimulator(const PowerSource* source, BmcParams params, Rng rng)
    : source_(source), params_(params), rng_(rng) {}

double BmcSimulator::Quantize(double watts) const {
  return params_.quantize_watts ? std::round(watts) : watts;
}

SensorReading BmcSimulator::ReadTotalPower() {
  const double w = source_->SystemWatts() * params_.gain +
                   rng_.Gaussian(0.0, params_.noise_stddev_watts);
  return {"Total_Power", Quantize(std::max(0.0, w)), "Watts"};
}

SensorReading BmcSimulator::ReadCpuPower() {
  const double w = source_->CpuWatts() * params_.gain +
                   rng_.Gaussian(0.0, params_.noise_stddev_watts);
  return {"CPU_Power", Quantize(std::max(0.0, w)), "Watts"};
}

SensorReading BmcSimulator::ReadCpuTemp() {
  const double t =
      source_->CpuTempCelsius() + rng_.Gaussian(0.0, params_.temp_noise_stddev);
  return {"CPU_Temp", std::round(t * 10.0) / 10.0, "degrees C"};
}

std::vector<SensorReading> BmcSimulator::SdrList() {
  return {ReadTotalPower(), ReadCpuPower(), ReadCpuTemp()};
}

std::string BmcSimulator::RenderSdr(const std::vector<SensorReading>& sdr) {
  std::string out;
  for (const auto& reading : sdr) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-16s | %10.1f %s\n",
                  reading.name.c_str(), reading.value, reading.unit.c_str());
    out += line;
  }
  return out;
}

Wattmeter::Wattmeter(const PowerSource* source, WattmeterParams params)
    : source_(source), params_(params) {}

double Wattmeter::TotalAcWatts() const {
  return source_->SystemWatts() / params_.psu_efficiency;
}

std::vector<double> Wattmeter::PerPsuWatts() const {
  const double total = TotalAcWatts();
  if (params_.psu_count <= 1) return {total};
  std::vector<double> out(params_.psu_count, 0.0);
  // Split with the configured imbalance between the first two supplies.
  const double half = total / params_.psu_count;
  out[0] = half * (1.0 - params_.psu_imbalance);
  out[1] = half * (1.0 + params_.psu_imbalance);
  for (int i = 2; i < params_.psu_count; ++i) out[i] = half;
  // Keep the sum exact.
  double assigned = 0.0;
  for (int i = 0; i + 1 < params_.psu_count; ++i) assigned += out[i];
  out.back() = total - assigned;
  return out;
}

}  // namespace eco::ipmi
