#include "ipmi/sampler.hpp"

#include <cstdio>

namespace eco::ipmi {

TraceStats PowerTrace::Stats() const {
  TraceStats stats;
  stats.samples = samples_.size();
  if (samples_.empty()) return stats;

  double sum_sys = 0.0;
  double sum_cpu = 0.0;
  double sum_temp = 0.0;
  for (const auto& s : samples_) {
    sum_sys += s.system_watts;
    sum_cpu += s.cpu_watts;
    sum_temp += s.cpu_temp_celsius;
  }
  const double n = static_cast<double>(samples_.size());
  stats.avg_system_watts = sum_sys / n;
  stats.avg_cpu_watts = sum_cpu / n;
  stats.avg_cpu_temp = sum_temp / n;
  stats.duration_seconds = samples_.back().t - samples_.front().t;

  // Trapezoidal energy integral over the sampled trace — the same estimate
  // Chronus can make from discrete IPMI reads.
  double sys_joules = 0.0;
  double cpu_joules = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double dt = samples_[i].t - samples_[i - 1].t;
    sys_joules +=
        0.5 * (samples_[i].system_watts + samples_[i - 1].system_watts) * dt;
    cpu_joules += 0.5 * (samples_[i].cpu_watts + samples_[i - 1].cpu_watts) * dt;
  }
  stats.system_kilojoules = sys_joules / 1000.0;
  stats.cpu_kilojoules = cpu_joules / 1000.0;
  return stats;
}

std::string PowerTrace::ToCsv() const {
  std::string out = "t,system_watts,cpu_watts,cpu_temp\n";
  char line[128];
  for (const auto& s : samples_) {
    std::snprintf(line, sizeof(line), "%.1f,%.1f,%.1f,%.1f\n", s.t,
                  s.system_watts, s.cpu_watts, s.cpu_temp_celsius);
    out += line;
  }
  return out;
}

IpmiSampler::IpmiSampler(EventQueue* queue, BmcSimulator* bmc, double interval_s)
    : queue_(queue), bmc_(bmc), interval_s_(interval_s) {}

void IpmiSampler::Start() {
  if (running_) return;
  running_ = true;
  SampleAndReschedule(queue_->now());
}

void IpmiSampler::Stop() {
  running_ = false;
  if (pending_event_ != 0) {
    queue_->Cancel(pending_event_);
    pending_event_ = 0;
  }
}

void IpmiSampler::SampleAndReschedule(SimTime now) {
  if (!running_) return;
  PowerSample sample;
  sample.t = now;
  sample.system_watts = bmc_->ReadTotalPower().value;
  sample.cpu_watts = bmc_->ReadCpuPower().value;
  sample.cpu_temp_celsius = bmc_->ReadCpuTemp().value;
  trace_.Add(sample);
  pending_event_ = queue_->ScheduleAfter(
      interval_s_, [this](SimTime t) { SampleAndReschedule(t); });
}

}  // namespace eco::ipmi
